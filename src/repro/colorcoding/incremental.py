"""Incremental maintenance of count tables under edge updates.

Today's pipeline treats the count table as write-once: any edge change
invalidates :meth:`~repro.graph.graph.Graph.fingerprint` and forces a
full color-coding rebuild.  This module instead maintains the table as a
**materialized view** of the Equation (1) dynamic program: a batch of
edge insertions/deletions re-runs the batched combination plans only on
the *touched-column frontier*, and the result is bit-identical to a
fresh rebuild on the updated graph under the same coloring.

Touched-column frontier.  ``c(T_C, v)`` at level ``h`` reads level
``h' < h`` counts at ``v`` itself and neighbor sums at ``u ~ v``, so a
changed edge ``(a, b)`` can only perturb level-``h`` columns within
distance ``h - 2`` of an endpoint (level 2 changes at the endpoints
alone; each level adds one hop).  The frontier is grown over the
**union** of the old and new adjacency: a deleted edge no longer exists
in the new graph, but the stale contribution it used to carry still
propagates outward along it, so both incidence structures bound the
blast radius.  Level 1 (the per-color indicator rows) never changes
under pure edge updates.

Bit-identity argument (the PR 7 column-restriction argument, reused).
Three facts make the column-restricted recomputation exact, not just
approximately right:

1. Every per-column operation of the batched kernel — plan gathers,
   selection lookups, the fused einsum contraction, β division — is
   elementwise over the vertex axis, so running it on the frontier
   columns produces exactly the bytes the full run would put there.
2. The restricted neighbor sums replay ``csr_matvecs`` over the
   frontier rows of the adjacency with columns remapped to the sorted
   halo; each output element sees its additions in ascending neighbor
   order — the one-shot SpMM's exact floating-point sequence
   (:func:`repro.colorcoding.sharded._streamed_spmm`'s whole-halo
   argument).
3. Counts are nonnegative, so the fresh build's keep test ("row sum
   > 0") decomposes exactly into *any nonzero outside the frontier*
   (old data, unchanged by induction) OR *any nonzero inside* (the
   recomputed block) — the keep sets agree, and with them the layer
   key lists, the full/fallback mode decisions of every later level,
   and the sealed CSR records.

Untouched columns are untouched bytes: dense layers copy the surviving
rows and patch only the frontier columns; sealed
:class:`~repro.table.count_table.SuccinctLayer` records are re-sealed
only for frontier vertices, with untouched vertex records spliced over
(key rows remapped through the monotone keep map).

Telemetry: ``count.delta_updates_total`` (edge changes applied),
``count.delta_rows_touched`` (frontier columns summed over levels) and
``time.delta_propagate`` accumulate into the caller's instrumentation —
names deliberately distinct from the build counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.colorcoding.buildup import (
    _csr_row_subset,
    _exec_compiled,
    _exec_group,
    _exec_resolved,
    _spmm,
)
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.plans import compile_plans, level_plans
from repro.errors import BuildError
from repro.graph.graph import Graph
from repro.table.count_table import (
    CountTable,
    Layer,
    LayerView,
    SuccinctLayer,
    csr_offsets,
)
from repro.treelets.registry import TreeletRegistry
from repro.util.instrument import Instrumentation

__all__ = ["DeltaResult", "apply_edge_updates", "touched_frontiers"]

Key = Tuple[int, int]


@dataclass
class DeltaResult:
    """Outcome of one :func:`apply_edge_updates` batch.

    Attributes
    ----------
    table, graph:
        The maintained count table and the updated graph it now counts.
        When the batch is a pure no-op both are the *input* objects.
    touched:
        Sorted endpoint vertices whose adjacency changed.
    rows_touched:
        Frontier columns recomputed, summed over levels ``2..k`` — the
        work measure the update/rebuild speedup scales with.
    updates_applied, edges_added, edges_removed:
        Edge changes the batch actually made (no-op entries excluded).
    dirty_columns:
        Sorted vertices whose *sub-k* layer counts (sizes ``1..k-1``)
        may have changed — the radius-``(k-3)`` frontier ball, which
        contains the endpoints.  The sampling plane's cache-retargeting
        hint: gathered-cumulative rows stay valid for every vertex
        whose neighborhood avoids this set (see
        :meth:`repro.colorcoding.urn.TreeletUrn.rebind`).
    """

    table: CountTable
    graph: Graph
    touched: np.ndarray
    rows_touched: int
    updates_applied: int
    edges_added: int
    edges_removed: int
    dirty_columns: Optional[np.ndarray] = None


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, verts: np.ndarray
) -> np.ndarray:
    """Concatenated neighbor lists of ``verts`` (one CSR gather)."""
    lengths = (indptr[verts + 1] - indptr[verts]).astype(np.int64)
    offsets = np.zeros(verts.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    gather = (
        np.repeat(indptr[verts].astype(np.int64) - offsets[:-1], lengths)
        + np.arange(total, dtype=np.int64)
    )
    return indices[gather]


def touched_frontiers(
    old_graph: Graph, new_graph: Graph, endpoints: np.ndarray, k: int
) -> List[np.ndarray]:
    """Balls of radius ``0 .. k-2`` around the updated endpoints.

    Grown over the union of old and new adjacency (see the module
    docstring); entry ``r`` is the sorted vertex set within distance
    ``r``, and level ``h`` of the delta recomputes exactly entry
    ``h - 2``.
    """
    ball = np.unique(np.asarray(endpoints, dtype=np.int64))
    balls = [ball]
    for _radius in range(1, max(k - 1, 1)):
        grown = np.union1d(
            _gather_neighbors(old_graph.indptr, old_graph.indices, ball),
            _gather_neighbors(new_graph.indptr, new_graph.indices, ball),
        )
        ball = np.union1d(ball, grown)
        balls.append(ball)
    return balls


def _membership(sorted_values: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Boolean membership of ``queries`` in a sorted unique array."""
    if sorted_values.size == 0:
        return np.zeros(queries.shape, dtype=bool)
    positions = np.searchsorted(sorted_values, queries)
    positions = np.minimum(positions, sorted_values.size - 1)
    return sorted_values[positions] == queries


def _column_block(layer: LayerView, cols: np.ndarray) -> np.ndarray:
    """Dense float64 ``num_keys × len(cols)`` column block of a layer.

    Dense layers slice; succinct layers scatter their CSR vertex records
    for exactly the requested columns — no full densification either
    way, so the cost stays proportional to the block.
    """
    if layer.layout == "dense":
        return np.ascontiguousarray(
            layer.counts[:, cols], dtype=np.float64
        )
    block = np.zeros((layer.num_keys, cols.size), dtype=np.float64)
    indptr = layer.indptr
    starts = indptr[cols].astype(np.int64)
    lengths = (indptr[cols + 1] - starts).astype(np.int64)
    offsets = np.zeros(cols.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    gather = (
        np.repeat(starts - offsets[:-1], lengths)
        + np.arange(total, dtype=np.int64)
    )
    block[
        np.asarray(layer.key_row[gather], dtype=np.int64),
        np.repeat(np.arange(cols.size, dtype=np.int64), lengths),
    ] = layer.values[gather]
    return block


def _restricted_rows(adjacency, rows: np.ndarray):
    """``adjacency[rows]`` with columns remapped onto the sorted halo.

    Returns ``(piece, halo)`` where ``piece`` is a CSR over the halo
    columns; the remap is monotone, so each row's axpy order — and with
    it the floating-point sum — matches the unrestricted SpMM exactly.
    """
    sub = _csr_row_subset(adjacency, rows)
    halo, halo_cols = np.unique(sub.indices, return_inverse=True)
    piece = sparse.csr_matrix(
        (sub.data, halo_cols.reshape(-1), sub.indptr),
        shape=(rows.size, halo.size),
    )
    return piece, halo


def _neighbor_block(
    adjacency,
    layer: LayerView,
    rows: np.ndarray,
    instrumentation: Instrumentation,
) -> np.ndarray:
    """Augmented ``(num_keys + 1, len(rows))`` restricted neighbor sums.

    The frontier counterpart of
    :func:`repro.colorcoding.buildup._neighbor_matrix`: the same values
    as ``_neighbor_matrix(adjacency, counts)[:, rows]`` bit for bit,
    computed from only the halo columns of the source layer, with the
    trailing all-zero sentinel row the selection lookups rely on.
    """
    instrumentation.count("spmm_ops")
    piece, halo = _restricted_rows(adjacency, rows)
    operand = np.ascontiguousarray(_column_block(layer, halo).T)
    sums = _spmm(piece, operand)
    augmented = np.empty((layer.num_keys + 1, rows.size), dtype=np.float64)
    augmented[:-1] = sums.T
    augmented[-1] = 0.0
    return augmented


def _restricted_sums(
    adjacency,
    layer: LayerView,
    rows: np.ndarray,
    row_subset: np.ndarray,
    instrumentation: Instrumentation,
) -> np.ndarray:
    """``(len(rows), len(row_subset))`` neighbor sums over selected keys.

    Mirrors the sharded ``_streamed_spmm(..., row_subset=...)`` call the
    zero-rooted selection groups make: only the layer rows the color-0
    lookup actually reads enter the SpMM.
    """
    instrumentation.count("spmm_ops")
    piece, halo = _restricted_rows(adjacency, rows)
    operand = np.ascontiguousarray(_column_block(layer, halo)[row_subset].T)
    return _spmm(piece, operand)


def _exec_zero_restricted(
    clevel,
    shim: CountTable,
    sources: Dict[int, LayerView],
    adjacency,
    cols: np.ndarray,
    colors_local: np.ndarray,
    instrumentation: Instrumentation,
) -> np.ndarray:
    """The zero-rooted size-``k`` level on the frontier columns.

    Mirrors ``_exec_zero_shard`` with an arbitrary column set instead of
    a contiguous shard: selection groups run one restricted SpMM over
    exactly the rows the color-0 lookup reads, contraction groups
    contract the frontier's color-0 columns against restricted neighbor
    sums.  Non-color-0 columns stay exactly ``0.0``, as in the full
    kernel.
    """
    width = cols.size
    out = np.zeros((len(clevel.keys), width), dtype=np.float64)
    zero_local = np.flatnonzero(colors_local == 0)
    if zero_local.size == 0:
        return out
    zero_rows = cols[zero_local]
    prime_cols: Dict[int, np.ndarray] = {}
    for group in clevel.groups:
        instrumentation.count("merge_ops", group.prime_rows.size)
        if group.select_lut is not None:
            slots_zero, rows_zero = group.color_slots[0]
            if slots_zero.size:
                values = _restricted_sums(
                    adjacency, sources[group.h_second], zero_rows,
                    rows_zero, instrumentation,
                )
                rows = group.out_rows[slots_zero]
                divisors = clevel.betas[rows] > 1.0
                acc = values.T
                if divisors.any():
                    acc = acc.copy()
                    acc[divisors] /= clevel.betas[rows][divisors, None]
                out[np.ix_(rows, zero_local)] = acc
            continue
        if group.h_prime not in prime_cols:
            prime_cols[group.h_prime] = np.ascontiguousarray(
                shim.layer(group.h_prime).counts[:, zero_local]
            )
        second = _neighbor_block(
            adjacency, sources[group.h_second], zero_rows, instrumentation
        )
        acc = _exec_group(
            group, prime_cols[group.h_prime], second, colors_local[zero_local]
        )
        divisors = clevel.betas[group.out_rows] > 1.0
        if divisors.any():
            acc[divisors] /= clevel.betas[group.out_rows][divisors, None]
        out[np.ix_(group.out_rows, zero_local)] = acc
    return out


def _patched_layer(
    h: int,
    old_layer: LayerView,
    candidate_keys: List[Key],
    out_block: np.ndarray,
    cols: np.ndarray,
    n: int,
    in_place: bool = False,
) -> LayerView:
    """Splice the recomputed frontier columns into the level's layer.

    ``candidate_keys`` is the level's sorted key universe and
    ``out_block`` its recomputed counts at the frontier ``cols``.  The
    keep set decomposes exactly (module docstring, fact 3); dense layers
    patch the frontier columns (in place when the caller owns the table
    and the key set is unchanged — the steady-state trickle path, which
    does column-local work instead of copying the matrix), succinct
    layers re-seal only frontier vertex records and splice the rest with
    key rows remapped through the (monotone) keep map.

    The dense keep test reads :meth:`DenseLayer.row_totals` minus the
    frontier row sums instead of scanning the off-frontier matrix:
    counts are integer-valued floats, so the subtraction is exact and
    the ``> 0`` decision matches the fresh build's bit for bit.
    """
    candidate_rows = {key: i for i, key in enumerate(candidate_keys)}
    old_cand = np.asarray(
        [candidate_rows[key] for key in old_layer.keys], dtype=np.int64
    ).reshape(old_layer.num_keys)

    pos_old = np.zeros(len(candidate_keys), dtype=bool)
    if old_layer.layout == "dense":
        if old_layer.counts.size:
            frontier_sums = np.asarray(
                old_layer.counts[:, cols], dtype=np.float64
            ).sum(axis=1)
            pos_old[old_cand] = (
                old_layer.row_totals() - frontier_sums
            ) > 0.0
    else:
        pair_verts = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(old_layer.indptr)
        )
        outside_pairs = ~_membership(cols, pair_verts)
        if outside_pairs.any():
            rows_outside = np.asarray(
                old_layer.key_row[outside_pairs], dtype=np.int64
            )
            pos_old[old_cand] = np.bincount(
                rows_outside, minlength=old_layer.num_keys
            ) > 0
    pos_new = (out_block > 0.0).any(axis=1)
    keep = pos_old | pos_new
    kept = np.flatnonzero(keep)
    kept_keys = [candidate_keys[i] for i in kept]
    kept_pos = np.full(len(candidate_keys), -1, dtype=np.int64)
    kept_pos[kept] = np.arange(kept.size, dtype=np.int64)

    if old_layer.layout == "dense":
        if (
            in_place
            and old_layer.counts.flags.writeable
            and kept_keys == old_layer.keys
        ):
            # Steady state: no key births or deaths, caller owns the
            # table — patch the frontier columns into the live matrix.
            old_layer.patch_columns(cols, out_block[old_cand])
            return old_layer
        new_counts = np.zeros((kept.size, n), dtype=np.float64)
        old_keep = keep[old_cand]
        if old_keep.any():
            new_counts[kept_pos[old_cand[old_keep]]] = np.asarray(
                old_layer.counts[old_keep], dtype=np.float64
            )
        new_counts[:, cols] = out_block[kept]
        return Layer(h, kept_keys, new_counts)

    # Succinct splice.  Untouched vertex records carry only keys with a
    # positive count outside the frontier, i.e. kept keys, so the remap
    # below never hits -1; it is monotone over kept rows, so remapped
    # records keep their strictly-ascending key order.
    remap = kept_pos[old_cand]
    pair_verts = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(old_layer.indptr)
    )
    untouched = ~_membership(cols, pair_verts)
    old_rows = remap[np.asarray(old_layer.key_row, dtype=np.int64)[untouched]]
    old_values = np.asarray(old_layer.values, dtype=np.float64)[untouched]

    sub = out_block[kept]
    new_local, new_rows = np.nonzero(sub.T)
    new_values = sub[new_rows, new_local]

    all_verts = np.concatenate([pair_verts[untouched], cols[new_local]])
    all_rows = np.concatenate([old_rows, new_rows.astype(np.int64)])
    all_values = np.concatenate([old_values, new_values])
    order = np.argsort(all_verts, kind="stable")
    return SuccinctLayer(
        h,
        kept_keys,
        csr_offsets(all_verts, n),
        all_rows[order],
        all_values[order],
    )


def apply_edge_updates(
    table: CountTable,
    graph: Graph,
    updates,
    coloring: ColoringScheme,
    registry: Optional[TreeletRegistry] = None,
    instrumentation: Optional[Instrumentation] = None,
    in_place: bool = False,
) -> DeltaResult:
    """Maintain a count table under a batch of edge updates.

    Parameters
    ----------
    table:
        The table built on ``graph`` under ``coloring`` (any layout).
        With ``in_place=False`` it is not mutated; the result carries a
        fresh table sharing the unchanged layer-1 object.  With
        ``in_place=True`` the caller relinquishes it: dense levels whose
        key set is unchanged are patched in the live matrices (the
        steady-state trickle fast path — column-local work instead of
        matrix copies), so the input table must not be read afterwards.
        Read-only (memory-mapped) or key-changing levels silently fall
        back to the copying path either way.
    graph:
        The graph the table currently counts.
    updates:
        Edge update batch — ``(op, u, v)`` triples accepted by
        :func:`repro.graph.graph.normalize_updates`.
    coloring:
        The build's coloring.  Persisting it per build is what makes
        the delta and an oracle rebuild see identical color
        assignments; pure edge updates never change it.
    registry, instrumentation:
        Treelet registry for ``k`` (built on demand) and the counter
        bag receiving the ``delta_*`` telemetry.

    Returns a :class:`DeltaResult` whose table is **bit-identical** to
    ``build_table(new_graph, coloring, ...)`` — same kept keys, same
    count bytes, same layout.
    """
    k = table.k
    n = table.num_vertices
    if graph.num_vertices != n:
        raise BuildError(
            f"table covers {n} vertices, graph has {graph.num_vertices}"
        )
    if coloring.k != k or coloring.num_vertices != n:
        raise BuildError(
            f"coloring is for k={coloring.k} over {coloring.num_vertices} "
            f"vertices; table wants k={k} over {n}"
        )
    registry = registry or TreeletRegistry(k)
    if registry.k != k:
        raise BuildError(f"registry is for k={registry.k}, table for k={k}")
    instrumentation = instrumentation or Instrumentation()

    with instrumentation.timer("delta_propagate"):
        added, removed, endpoints = graph.resolve_updates(updates)
        if endpoints.size == 0:
            return DeltaResult(table, graph, endpoints, 0, 0, 0, 0)
        new_graph, _touched = graph.apply_updates(updates)
        balls = touched_frontiers(graph, new_graph, endpoints, k)
        adjacency = new_graph.adjacency_csr()
        colors = coloring.colors
        compiled = compile_plans(registry)
        plans = level_plans(registry)
        universe_sizes = {h: len(compiled[h].keys) for h in range(2, k + 1)}
        universe_sizes[1] = k
        zero_rooted = table.zero_rooted

        new_table = CountTable(k, n, zero_rooted=zero_rooted)
        new_table.set_layer(table.layer(1))
        rows_touched = 0
        for h in range(2, k + 1):
            clevel = compiled[h]
            cols = balls[h - 2]
            width = cols.size
            rows_touched += width
            source_sizes = sorted(
                {g.h_second for g in clevel.groups}
                | {g.h_prime for g in clevel.groups}
            )
            sources = {size: new_table.layer(size) for size in source_sizes}
            # Mode selection must mirror _run_batched exactly; the keep
            # sets agree by induction, so the decisions coincide with
            # the fresh build's.
            full = all(
                sources[size].num_keys == universe_sizes[size]
                for size in source_sizes
            )
            colors_local = np.ascontiguousarray(colors[cols])
            shim = CountTable(k, width, False)
            for size in source_sizes:
                shim.set_layer(
                    Layer(
                        size,
                        list(sources[size].keys),
                        _column_block(sources[size], cols),
                    )
                )
            if h == k and zero_rooted and full:
                out = _exec_zero_restricted(
                    clevel, shim, sources, adjacency, cols, colors_local,
                    instrumentation,
                )
                keys: List[Key] = list(clevel.keys)
            elif full:
                neighbor_sums = {
                    size: _neighbor_block(
                        adjacency, sources[size], cols, instrumentation
                    )
                    for size in source_sizes
                }
                out = _exec_compiled(
                    shim, clevel, colors_local,
                    np.arange(width, dtype=np.int64), neighbor_sums, {},
                    instrumentation,
                )
                keys = list(clevel.keys)
            else:
                instrumentation.count("fallback_levels")
                plan = plans[h]
                neighbor_sums = {
                    size: _neighbor_block(
                        adjacency, sources[size], cols, instrumentation
                    )
                    for size in source_sizes
                }
                out = _exec_resolved(
                    shim, plan, neighbor_sums, instrumentation
                )
                if h == k and zero_rooted:
                    out *= (colors_local == 0).astype(np.float64)
                # The plan's enumeration order and the sorted universe
                # hold the same key set; canonicalize to sorted so the
                # patching below is order-independent.
                perm = sorted(
                    range(len(plan.out_keys)),
                    key=lambda i: plan.out_keys[i],
                )
                out = out[perm]
                keys = [plan.out_keys[i] for i in perm]
            new_table.set_layer(
                _patched_layer(
                    h, table.layer(h), keys, out, cols, n,
                    in_place=in_place,
                )
            )
            del out
        instrumentation.count(
            "delta_updates_total", int(added.size + removed.size)
        )
        instrumentation.count("delta_rows_touched", rows_touched)
    return DeltaResult(
        new_table,
        new_graph,
        endpoints,
        rows_touched,
        int(added.size + removed.size),
        int(added.size),
        int(removed.size),
        dirty_columns=balls[k - 3] if k >= 3 else endpoints,
    )
