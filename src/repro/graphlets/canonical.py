"""Canonical graphlet representatives (the paper's Nauty replacement).

Before encoding a sampled graphlet, motivo replaces it with a canonical
representative of its isomorphism class computed by Nauty (§3.3).  This
module implements the same service from scratch with the classic
individualization–refinement scheme:

1. iterated color refinement (1-WL): nodes are repeatedly re-colored by the
   multiset of their neighbors' colors until the partition stabilizes;
2. if cells remain non-trivial, each member of the first non-singleton cell
   is individualized in turn and the search recurses;
3. each discrete (all-singleton) leaf yields one candidate relabeling; the
   minimum packed encoding over all leaves is the canonical form.

Correctness: refinement cells are unions of automorphism orbits and the
cell *order* depends only on isomorphism-invariant signatures, so the set
of candidate relabelings — and hence their minimum — is identical for
isomorphic inputs.

Results are memoized; repeated sampling hits the cache almost always.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import GraphletError
from repro.graphlets.encoding import (
    GraphletEncoding,
    adjacency_sets,
    graphlet_edge_count,
    relabel,
)

__all__ = ["canonical_form", "are_isomorphic", "canonical_cache_info"]

_CACHE: Dict[Tuple[int, int], int] = {}


def canonical_form(bits: GraphletEncoding, k: int) -> GraphletEncoding:
    """Minimal packed encoding over the isomorphism class of ``bits``.

    Two k-node graphs are isomorphic iff their canonical forms are equal.
    """
    if k < 1:
        raise GraphletError("graphlet size must be positive")
    if k <= 2:
        return bits  # 0 or 1 possible edges: already canonical.
    key = (k, bits)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    edge_count = graphlet_edge_count(bits)
    full = k * (k - 1) // 2
    if edge_count in (0, full):
        # Empty or complete: every labeling is identical.
        _CACHE[key] = bits
        return bits

    adjacency = adjacency_sets(bits, k)
    best: List[Optional[int]] = [None]

    def refine(colors: Tuple[int, ...]) -> Tuple[int, ...]:
        """Stable 1-WL partition with canonical (signature-sorted) ids."""
        while True:
            signatures = [
                (colors[v], tuple(sorted(colors[u] for u in adjacency[v])))
                for v in range(k)
            ]
            palette = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
            new_colors = tuple(palette[sig] for sig in signatures)
            if new_colors == colors:
                return colors
            colors = new_colors

    def search(colors: Tuple[int, ...]) -> None:
        colors = refine(colors)
        cells: Dict[int, List[int]] = {}
        for v, color in enumerate(colors):
            cells.setdefault(color, []).append(v)
        target_cell = None
        for color in sorted(cells):
            if len(cells[color]) > 1:
                target_cell = cells[color]
                break
        if target_cell is None:
            # Discrete partition: node with color c goes to position c.
            permutation = [0] * k
            for v, color in enumerate(colors):
                permutation[v] = color
            candidate = relabel(bits, k, permutation)
            if best[0] is None or candidate < best[0]:
                best[0] = candidate
            return
        for v in target_cell:
            # Individualize v: give it a color preceding its cell-mates.
            branched = tuple(
                c if u != v else -1 for u, c in enumerate(colors)
            )
            search(branched)

    search(tuple(0 for _ in range(k)))
    assert best[0] is not None
    _CACHE[key] = best[0]
    return best[0]


def are_isomorphic(bits_a: GraphletEncoding, bits_b: GraphletEncoding, k: int) -> bool:
    """Whether two packed k-node graphs are isomorphic."""
    return canonical_form(bits_a, k) == canonical_form(bits_b, k)


def canonical_cache_info() -> "tuple[int,]":
    """Size of the memoization cache (for diagnostics)."""
    return (len(_CACHE),)
