"""Exhaustive enumeration of connected k-graphlets up to isomorphism.

The paper repeatedly needs the census of distinct graphlets: 21 for k = 5,
112 for k = 6, 853 for k = 7, over 11k for k = 8 (§1).  Enumeration here
proceeds by *vertex extension*: every connected graph on ``h + 1`` nodes
contains a non-cut vertex, so it arises from a connected graph on ``h``
nodes by adding one node joined to a non-empty neighbor subset.  Starting
from K1 and canonicalizing at every step keeps the frontier small
(``census(h) * (2^h - 1)`` candidates per level).

Enumeration is cheap through k = 7; k = 8 is possible but slow in pure
Python, and nothing in the pipeline requires it — AGS computes spanning
tree tables lazily per *observed* graphlet.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.errors import GraphletError
from repro.graphlets.canonical import canonical_form
from repro.graphlets.encoding import GraphletEncoding, decode_graphlet, pair_index

__all__ = ["enumerate_graphlets", "graphlet_census"]


@lru_cache(maxsize=None)
def enumerate_graphlets(k: int) -> Tuple[GraphletEncoding, ...]:
    """All connected graphs on ``k`` nodes, as sorted canonical encodings.

    ``len(enumerate_graphlets(k))`` matches OEIS A001349
    (1, 1, 2, 6, 21, 112, 853, ...).
    """
    if k < 1:
        raise GraphletError("graphlet size must be positive")
    if k == 1:
        return (0,)
    smaller = enumerate_graphlets(k - 1)
    h = k - 1
    found = set()
    for bits in smaller:
        # Re-embed the h-node encoding into the k-node bit layout.
        embedded = 0
        for i, j in decode_graphlet(bits, h):
            embedded |= 1 << pair_index(i, j, k)
        new_node = h
        for neighbor_mask in range(1, 1 << h):
            candidate = embedded
            mask = neighbor_mask
            while mask:
                low = mask & -mask
                neighbor = low.bit_length() - 1
                candidate |= 1 << pair_index(neighbor, new_node, k)
                mask ^= low
            found.add(canonical_form(candidate, k))
    return tuple(sorted(found))


def graphlet_census(k: int) -> int:
    """Number of distinct connected k-graphlets (enumerates for k <= 7).

    For larger ``k`` falls back to the tabulated census so the AGS covering
    threshold can be computed without an (expensive) explicit enumeration.
    """
    if k <= 7:
        return len(enumerate_graphlets(k))
    from repro.util.combinatorics import connected_graph_count

    return connected_graph_count(k)


def graphlet_index(k: int) -> "dict[GraphletEncoding, int]":
    """Canonical encoding → dense index, in sorted order."""
    return {bits: i for i, bits in enumerate(enumerate_graphlets(k))}


def star_graphlet(k: int) -> GraphletEncoding:
    """Canonical encoding of the k-node star (the Yelp-dominant motif)."""
    center_edges: List[Tuple[int, int]] = [(0, j) for j in range(1, k)]
    from repro.graphlets.encoding import encode_edges

    return canonical_form(encode_edges(center_edges, k), k)


def clique_graphlet(k: int) -> GraphletEncoding:
    """Canonical encoding of the k-clique."""
    return (1 << (k * (k - 1) // 2)) - 1


def path_graphlet(k: int) -> GraphletEncoding:
    """Canonical encoding of the k-node path."""
    from repro.graphlets.encoding import encode_edges

    return canonical_form(
        encode_edges([(i, i + 1) for i in range(k - 1)], k), k
    )


def cycle_graphlet(k: int) -> GraphletEncoding:
    """Canonical encoding of the k-node cycle."""
    from repro.graphlets.encoding import encode_edges

    return canonical_form(
        encode_edges([(i, (i + 1) % k) for i in range(k)], k), k
    )
