"""Graphlet (motif) machinery.

A graphlet is a connected graph on ``k`` nodes.  Motivo packs each graphlet
adjacency matrix into a 128-bit integer (§3.3, "Graphlets"): the strictly
upper triangular part, row-major, fits in ``k(k-1)/2 ≤ 120`` bits for
``k ≤ 16``.  Canonical representatives (Nauty in the paper) are computed
here with color refinement plus backtracking; spanning-tree counts σ_i come
from Kirchhoff's theorem and the per-shape table σ_ij from an in-memory run
of the color-coding build-up, both exactly as in §3.3 ("Spanning trees").
"""

from repro.graphlets.encoding import (
    GraphletEncoding,
    decode_graphlet,
    encode_adjacency,
    encode_edges,
    graphlet_degrees,
    graphlet_edge_count,
    is_connected_graphlet,
    pair_index,
)
from repro.graphlets.canonical import canonical_form, are_isomorphic
from repro.graphlets.enumerate import enumerate_graphlets, graphlet_census
from repro.graphlets.spanning import (
    spanning_tree_count,
    spanning_tree_shape_counts,
)

__all__ = [
    "GraphletEncoding",
    "decode_graphlet",
    "encode_adjacency",
    "encode_edges",
    "graphlet_degrees",
    "graphlet_edge_count",
    "is_connected_graphlet",
    "pair_index",
    "canonical_form",
    "are_isomorphic",
    "enumerate_graphlets",
    "graphlet_census",
    "spanning_tree_count",
    "spanning_tree_shape_counts",
]
