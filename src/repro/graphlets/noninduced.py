"""Induced ↔ non-induced count conversion.

The paper (§1): "we are talking about induced copies; non-induced copies
are easier to count and can be derived from the induced ones."  The
derivation is linear: a non-induced copy of ``H`` lives inside the induced
subgraph on its vertex set, so

    noninduced(H) = Σ_{H' ⊇ H, |H'| = k} occ(H, H') · induced(H')

where ``occ(H, H')`` counts the subgraphs of ``H'`` on the *same k
vertices* isomorphic to ``H``.  That overlap matrix is computed once per
``k`` by permutation counting (embeddings of H into H' divided by |Aut(H)|)
and cached; both directions of the conversion are exposed (the matrix is
unitriangular when graphlets are ordered by edge count, so inversion is
exact back-substitution over the rationals).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Dict, Mapping, Tuple

from repro.errors import GraphletError
from repro.graphlets.canonical import canonical_form
from repro.graphlets.encoding import (
    GraphletEncoding,
    graphlet_edge_count,
    relabel,
)
from repro.graphlets.enumerate import enumerate_graphlets

__all__ = [
    "automorphism_count",
    "occurrence_count",
    "noninduced_counts",
    "induced_counts",
    "overlap_matrix",
]


@lru_cache(maxsize=65536)
def automorphism_count(bits: GraphletEncoding, k: int) -> int:
    """|Aut(H)|: permutations of the k nodes mapping H onto itself."""
    if k < 1:
        raise GraphletError("graphlet size must be positive")
    return sum(
        1
        for perm in permutations(range(k))
        if relabel(bits, k, perm) == bits
    )


@lru_cache(maxsize=65536)
def occurrence_count(
    sub_bits: GraphletEncoding, super_bits: GraphletEncoding, k: int
) -> int:
    """Spanning subgraphs of ``super`` isomorphic to ``sub``.

    Counts labeled embeddings (permutations π with π(sub) ⊆ super) and
    divides by |Aut(sub)| — each subgraph copy is hit once per
    automorphism.
    """
    embeddings = sum(
        1
        for perm in permutations(range(k))
        if relabel(sub_bits, k, perm) & ~super_bits == 0
    )
    return embeddings // automorphism_count(sub_bits, k)


@lru_cache(maxsize=None)
def overlap_matrix(k: int) -> Tuple[Tuple[int, ...], ...]:
    """occ(H_i, H_j) over all canonical k-graphlets, row = sub, col = super.

    Graphlets are indexed in ``enumerate_graphlets(k)`` order; the matrix
    has occ(H, H) = 1 on the diagonal and occ(H, H') = 0 whenever H has
    more edges than H', so ordering by edge count makes it unitriangular.
    """
    graphlets = enumerate_graphlets(k)
    return tuple(
        tuple(
            occurrence_count(sub, sup, k) for sup in graphlets
        )
        for sub in graphlets
    )


def noninduced_counts(
    induced: Mapping[int, float], k: int
) -> Dict[int, float]:
    """Non-induced copy counts from induced ones (the §1 derivation)."""
    graphlets = enumerate_graphlets(k)
    index = {bits: i for i, bits in enumerate(graphlets)}
    for bits in induced:
        if canonical_form(bits, k) not in index:
            raise GraphletError(f"not a canonical k-graphlet: {bits:#x}")
    matrix = overlap_matrix(k)
    out: Dict[int, float] = {}
    for i, sub in enumerate(graphlets):
        total = 0.0
        for sup, value in induced.items():
            total += matrix[i][index[sup]] * value
        if total:
            out[sub] = total
    return out


def induced_counts(
    noninduced: Mapping[int, float], k: int
) -> Dict[int, float]:
    """Invert :func:`noninduced_counts` by back-substitution.

    Graphlets sorted by decreasing edge count make the system triangular:
    the densest graphlet's induced and non-induced counts coincide, and
    each sparser one subtracts its occurrences inside denser classes.
    """
    graphlets = enumerate_graphlets(k)
    index = {bits: i for i, bits in enumerate(graphlets)}
    matrix = overlap_matrix(k)
    order = sorted(
        range(len(graphlets)),
        key=lambda i: -graphlet_edge_count(graphlets[i]),
    )
    solved: Dict[int, float] = {}
    for i in order:
        sub = graphlets[i]
        value = float(noninduced.get(sub, 0.0))
        for sup, sup_value in solved.items():
            j = index[sup]
            if j != i:
                value -= matrix[i][j] * sup_value
        solved[sub] = value
    return {bits: value for bits, value in solved.items() if value}
