"""Spanning-tree counts of graphlets (§3.3, "Spanning trees").

Two quantities drive the sampling estimators:

``σ_i``
    The total number of spanning trees of graphlet ``H_i`` — motivo gets it
    from Kirchhoff's matrix-tree theorem in O(k^3).  Implemented here with
    a fraction-free Bareiss determinant, so the result is an exact integer.
``σ_ij``
    The number of spanning trees of ``H_i`` isomorphic to the free treelet
    shape ``T_j`` — needed by AGS.  Motivo computes it with an *in-memory
    run of the build-up phase* on the graphlet itself and caches the
    results on disk because they are expensive for k ≥ 7.  Both behaviors
    are reproduced: a self-contained exact dynamic program over the
    graphlet (every node gets a distinct color, so every spanning tree is
    colorful and is counted exactly once at the color-0 node), plus an
    in-process/disk cache.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphletError
from repro.graphlets.encoding import GraphletEncoding, adjacency_sets
from repro.treelets.encoding import canonical_free, getsize
from repro.treelets.registry import TreeletRegistry

__all__ = [
    "spanning_tree_count",
    "spanning_tree_shape_counts",
    "SigmaCache",
]


def spanning_tree_count(bits: GraphletEncoding, k: int) -> int:
    """Exact number of spanning trees via Kirchhoff / Bareiss.

    Deletes the last row/column of the Laplacian and evaluates the
    determinant with fraction-free Gaussian elimination — exact integers
    throughout, matching the paper's O(k^3) computation.
    """
    if k < 1:
        raise GraphletError("graphlet size must be positive")
    if k == 1:
        return 1
    adjacency = adjacency_sets(bits, k)
    size = k - 1
    matrix: List[List[int]] = [[0] * size for _ in range(size)]
    for v in range(size):
        matrix[v][v] = len(adjacency[v])
        for u in adjacency[v]:
            if u < size:
                matrix[v][u] = -1
    return _bareiss_determinant(matrix)


def _bareiss_determinant(matrix: List[List[int]]) -> int:
    """Fraction-free determinant of an integer matrix (Bareiss algorithm)."""
    m = [row[:] for row in matrix]
    n = len(m)
    if n == 0:
        return 1
    sign = 1
    previous_pivot = 1
    for step in range(n - 1):
        if m[step][step] == 0:
            for swap in range(step + 1, n):
                if m[swap][step] != 0:
                    m[step], m[swap] = m[swap], m[step]
                    sign = -sign
                    break
            else:
                return 0
        for row in range(step + 1, n):
            for col in range(step + 1, n):
                numerator = (
                    m[row][col] * m[step][step] - m[row][step] * m[step][col]
                )
                m[row][col] = numerator // previous_pivot
            m[row][step] = 0
        previous_pivot = m[step][step]
    return sign * m[n - 1][n - 1]


def spanning_tree_shape_counts(
    bits: GraphletEncoding,
    k: int,
    registry: Optional[TreeletRegistry] = None,
    cache: "Optional[SigmaCache]" = None,
) -> Dict[int, int]:
    """Spanning trees of the graphlet, bucketed by free treelet shape.

    Returns ``{canonical_free encoding of T_j: σ_ij}``; shapes with zero
    spanning trees are omitted.  ``sum(result.values())`` equals
    :func:`spanning_tree_count` (property-tested).

    The computation is the paper's in-memory build-up on the graphlet: give
    node ``i`` color ``i`` (all k colors distinct), run the Equation (1)
    dynamic program with exact integers, and read off, at the node of color
    0, the counts of every size-k rooted treelet grouped by its free shape.
    Every spanning tree contains the color-0 node exactly once, so it is
    counted exactly once — this is 0-rooting at its purest.
    """
    if cache is not None:
        cached = cache.get(bits, k)
        if cached is not None:
            return cached
    registry = registry or _default_registry(k)
    adjacency = adjacency_sets(bits, k)
    full_mask = (1 << k) - 1

    # table[(treelet, mask)] = per-node exact counts.
    table: Dict[Tuple[int, int], List[int]] = {}
    for v in range(k):
        key = (0, 1 << v)  # SINGLETON encoding is 0.
        counts = [0] * k
        counts[v] = 1
        table[key] = counts

    for h in range(2, k + 1):
        for treelet in registry.treelets_of_size(h):
            t_prime, t_second, beta_t = registry.decomposition(treelet)
            h_second = getsize(t_second)
            for mask in _masks_of_size(k, h):
                accumulated = [0] * k
                touched = False
                for sub_mask in _submasks_of_size(mask, h_second):
                    counts_second = table.get((t_second, sub_mask))
                    if counts_second is None:
                        continue
                    counts_prime = table.get((t_prime, mask ^ sub_mask))
                    if counts_prime is None:
                        continue
                    touched = True
                    for v in range(k):
                        left = counts_prime[v]
                        if not left:
                            continue
                        right = sum(counts_second[u] for u in adjacency[v])
                        if right:
                            accumulated[v] += left * right
                if touched and any(accumulated):
                    for v in range(k):
                        # Exact division: the sum is β_T times the count.
                        accumulated[v] //= beta_t
                    table[(treelet, mask)] = accumulated

    shape_counts: Dict[int, int] = {}
    for treelet in registry.treelets_of_size(k):
        counts = table.get((treelet, full_mask))
        if counts is None:
            continue
        rooted_at_zero = counts[0]
        if rooted_at_zero:
            shape = registry.shape_of_rooted[treelet]
            shape_counts[shape] = shape_counts.get(shape, 0) + rooted_at_zero
    if cache is not None:
        cache.put(bits, k, shape_counts)
    return shape_counts


_REGISTRY_CACHE: Dict[int, TreeletRegistry] = {}


def _default_registry(k: int) -> TreeletRegistry:
    registry = _REGISTRY_CACHE.get(k)
    if registry is None:
        registry = TreeletRegistry(k)
        _REGISTRY_CACHE[k] = registry
    return registry


def _masks_of_size(k: int, size: int) -> List[int]:
    from repro.util.bitops import masks_of_size

    return masks_of_size(k, size)


def _submasks_of_size(mask: int, size: int) -> List[int]:
    from repro.util.bitops import iter_subsets_of_size

    return list(iter_subsets_of_size(mask, size))


class SigmaCache:
    """In-memory + optional on-disk cache of σ_ij tables (§3.3).

    The paper: "motivo caches the σij and stores them to disk for later
    reuse.  In some cases (e.g. k = 8 on Facebook) this accelerates
    sampling by an order of magnitude."  The disk format is one JSON file
    per ``k`` mapping graphlet encodings to their shape-count dictionaries.
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        self._memory: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._dirty = False
        self._loaded_ks: set = set()

    def get(self, bits: GraphletEncoding, k: int) -> Optional[Dict[int, int]]:
        """Fetch a cached table, consulting disk on first use of each k."""
        self._ensure_loaded(k)
        return self._memory.get((k, bits))

    def put(self, bits: GraphletEncoding, k: int, table: Dict[int, int]) -> None:
        """Insert a table; call :meth:`flush` to persist."""
        self._memory[(k, bits)] = dict(table)
        self._dirty = True

    def flush(self) -> None:
        """Write all cached tables to disk (no-op without a directory)."""
        if self.directory is None or not self._dirty:
            return
        os.makedirs(self.directory, exist_ok=True)
        by_k: Dict[int, Dict[str, Dict[str, int]]] = {}
        for (k, bits), table in self._memory.items():
            by_k.setdefault(k, {})[str(bits)] = {
                str(shape): count for shape, count in table.items()
            }
        for k, payload in by_k.items():
            path = os.path.join(self.directory, f"sigma_k{k}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
        self._dirty = False

    def _ensure_loaded(self, k: int) -> None:
        if self.directory is None or k in self._loaded_ks:
            return
        self._loaded_ks.add(k)
        path = os.path.join(self.directory, f"sigma_k{k}.json")
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for bits_text, table in payload.items():
            self._memory[(k, int(bits_text))] = {
                int(shape): count for shape, count in table.items()
            }

    def __len__(self) -> int:
        return len(self._memory)
