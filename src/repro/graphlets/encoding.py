"""Packed adjacency-matrix encoding of graphlets (§3.3, "Graphlets").

A simple graph on ``k`` nodes has a symmetric adjacency matrix with zero
diagonal, so only the strictly upper triangle matters: ``k(k-1)/2`` bits,
at most 120 for ``k ≤ 16`` — the paper packs it in a 128-bit integer.  The
same layout is used here on Python integers.

Bit layout: pair ``(i, j)`` with ``i < j`` maps to bit
``pair_index(i, j, k) = i*k - i*(i+1)/2 + (j - i - 1)`` — row-major over the
upper triangle, bit 0 being pair (0, 1).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import GraphletError

__all__ = [
    "GraphletEncoding",
    "pair_index",
    "encode_edges",
    "encode_adjacency",
    "decode_graphlet",
    "graphlet_degrees",
    "graphlet_edge_count",
    "is_connected_graphlet",
    "adjacency_sets",
    "relabel",
]

#: A packed graphlet is just an int; the alias documents intent in signatures.
GraphletEncoding = int


def pair_index(i: int, j: int, k: int) -> int:
    """Bit position of the (i, j) pair, ``0 <= i < j < k``."""
    if not 0 <= i < j < k:
        raise GraphletError(f"need 0 <= i < j < k, got i={i} j={j} k={k}")
    return i * k - (i * (i + 1)) // 2 + (j - i - 1)


def encode_edges(edges: Iterable[Tuple[int, int]], k: int) -> GraphletEncoding:
    """Pack an edge list over nodes ``0..k-1`` into the bit encoding."""
    bits = 0
    for u, v in edges:
        if u == v:
            raise GraphletError("graphlets are simple: no self-loops")
        i, j = (u, v) if u < v else (v, u)
        bits |= 1 << pair_index(i, j, k)
    return bits


def encode_adjacency(matrix: "np.ndarray | Sequence[Sequence[int]]", k: int) -> GraphletEncoding:
    """Pack a k×k boolean/0-1 adjacency matrix into the bit encoding."""
    array = np.asarray(matrix)
    if array.shape != (k, k):
        raise GraphletError(f"adjacency must be {k}x{k}, got {array.shape}")
    bits = 0
    for i in range(k):
        for j in range(i + 1, k):
            if array[i][j]:
                bits |= 1 << pair_index(i, j, k)
    return bits


def decode_graphlet(bits: GraphletEncoding, k: int) -> List[Tuple[int, int]]:
    """Unpack the encoding into a sorted edge list."""
    edges = []
    for i in range(k):
        for j in range(i + 1, k):
            if (bits >> pair_index(i, j, k)) & 1:
                edges.append((i, j))
    return edges


def adjacency_sets(bits: GraphletEncoding, k: int) -> List[set]:
    """Unpack into per-node neighbor sets."""
    adjacency: List[set] = [set() for _ in range(k)]
    for i, j in decode_graphlet(bits, k):
        adjacency[i].add(j)
        adjacency[j].add(i)
    return adjacency


def graphlet_degrees(bits: GraphletEncoding, k: int) -> List[int]:
    """Per-node degrees (unsorted)."""
    degrees = [0] * k
    for i, j in decode_graphlet(bits, k):
        degrees[i] += 1
        degrees[j] += 1
    return degrees


def graphlet_edge_count(bits: GraphletEncoding) -> int:
    """Number of edges — popcount of the packed triangle."""
    return bin(bits).count("1")


def is_connected_graphlet(bits: GraphletEncoding, k: int) -> bool:
    """Whether the encoded graph is connected (graphlets must be)."""
    if k == 1:
        return True
    adjacency = adjacency_sets(bits, k)
    seen = {0}
    stack = [0]
    while stack:
        node = stack.pop()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == k


def relabel(bits: GraphletEncoding, k: int, permutation: Sequence[int]) -> GraphletEncoding:
    """Apply a node permutation: node ``x`` becomes ``permutation[x]``."""
    if sorted(permutation) != list(range(k)):
        raise GraphletError(f"not a permutation of 0..{k - 1}: {permutation}")
    out = 0
    for i, j in decode_graphlet(bits, k):
        a, b = permutation[i], permutation[j]
        if a > b:
            a, b = b, a
        out |= 1 << pair_index(a, b, k)
    return out
