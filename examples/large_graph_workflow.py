#!/usr/bin/env python
"""The large-graph workflow: flushing, memory-mapping, and biased coloring.

For its billion-edge runs the paper combines three §3 mechanisms: greedy
flushing (tables go to disk as soon as complete), memory-mapped reads
(the OS pages table data in on demand), and biased coloring with a λ
found by growing it until counts appear (§3.4).  This example runs that
exact recipe end to end on the largest surrogate:

1. tune λ with the §3.4 growth procedure;
2. build with a spill directory — watch the layers land on disk and the
   in-memory table stay one layer deep;
3. sample straight off the memory-mapped tables;
4. report what the Theorem 3 bound says about the accuracy cost.

Run:  python examples/large_graph_workflow.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import MotivoConfig, MotivoCounter
from repro.graph.datasets import load_dataset
from repro.sampling.bounds import minimum_count_for_guarantee, suggest_lambda
from repro.util.combinatorics import (
    biased_colorful_probability,
    colorful_probability,
)


def main() -> None:
    graph = load_dataset("friendster")
    k = 5
    print(
        f"friendster surrogate: n={graph.num_vertices:,}, "
        f"m={graph.num_edges:,}, k={k}"
    )

    # 1. Tune lambda (§3.4: grow until counts appear).
    lam = suggest_lambda(graph, k, rng=21)
    uniform_p = colorful_probability(k)
    if lam < 1.0 / k:
        biased_p = biased_colorful_probability(k, lam)
        print(f"\nsuggested λ = {lam:.4g}")
        print(
            f"colorful probability: {biased_p:.3e} vs uniform "
            f"{uniform_p:.3e} ({uniform_p / biased_p:.1f}x variance factor)"
        )
    else:
        lam = None
        print("\nthis graph is small enough that bias buys nothing; "
              "using the uniform coloring")

    # 2. Build with greedy flushing to a spill directory.
    with tempfile.TemporaryDirectory() as tmp:
        spill_dir = os.path.join(tmp, "tables")
        counter = MotivoCounter(
            graph,
            MotivoConfig(k=k, seed=22, biased_lambda=lam, spill_dir=spill_dir),
        )
        start = time.perf_counter()
        counter.build()
        build_s = time.perf_counter() - start

        files = sorted(os.listdir(spill_dir))
        on_disk = sum(
            os.path.getsize(os.path.join(spill_dir, f)) for f in files
        )
        table = counter.urn.table
        print(f"\nbuild: {build_s:.2f}s; {len(files)} spill files, "
              f"{on_disk / 1e6:.1f} MB on disk")
        print(f"stored pairs: {table.total_pairs():,} "
              f"(paper costing: {table.paper_equivalent_bytes() / 1e6:.1f} MB)")
        import numpy as np

        assert isinstance(table.layer(k).counts, np.memmap)
        print("size-k layer is memory-mapped — reads page in on demand")

        # 3. Sample straight off the mapped tables.
        start = time.perf_counter()
        estimates = counter.sample_naive(10_000)
        rate = 10_000 / (time.perf_counter() - start)
        print(f"\nsampling from mapped tables: {rate:,.0f} samples/s, "
              f"{estimates.distinct_graphlets()} distinct graphlets")
        for bits, count in estimates.top(5):
            print(f"  {bits:#08x}  ~{count:,.0f} copies "
                  f"({estimates.frequency(bits):.2%})")

        # 4. What does Theorem 3 promise at this p_k?
        p = counter.coloring.colorful_probability()
        needed = minimum_count_for_guarantee(
            0.25, 0.1, k, graph.max_degree, colorful_p=p
        )
        print(
            f"\nTheorem 3: one coloring gives ±25% w.p. 0.9 for every "
            f"graphlet with at least {needed:,.0f} copies"
        )


if __name__ == "__main__":
    main()
