#!/usr/bin/env python
"""Biased coloring: trading accuracy for table size and build time (§3.4).

On very large graphs motivo biases the coloring — one heavy color, the
rest at probability λ — so most treelet counts are zero and the tables
shrink.  The price is a smaller colorful probability p_k and therefore a
noisier estimator (Figure 6 plots the widened error distribution).

This example sweeps λ on the Friendster surrogate and reports, for each
setting: build time, stored table pairs, the colorful probability, and
the estimate dispersion across colorings for the most common graphlet.

Run:  python examples/biased_coloring_tradeoff.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import MotivoConfig, MotivoCounter
from repro.graph.datasets import load_dataset
from repro.util.combinatorics import colorful_probability


def run_setting(graph, k, lam, runs=5, samples=4000):
    """Build + sample several colorings; return aggregate statistics."""
    build_seconds = []
    pairs = []
    top_estimates = []
    top_bits = None
    for seed in range(runs):
        config = MotivoConfig(k=k, seed=1000 + seed, biased_lambda=lam)
        counter = MotivoCounter(graph, config)
        start = time.perf_counter()
        try:
            counter.build()
        except Exception:
            continue  # empty urn under an aggressive lambda
        build_seconds.append(time.perf_counter() - start)
        pairs.append(counter.urn.table.total_pairs())
        estimates = counter.sample_naive(samples)
        if top_bits is None and estimates.counts:
            top_bits = max(estimates.counts, key=estimates.counts.get)
        top_estimates.append(estimates.counts.get(top_bits, 0.0))
    return build_seconds, pairs, top_estimates


def main() -> None:
    graph = load_dataset("friendster")
    k = 5
    print(
        f"friendster surrogate: n={graph.num_vertices}, m={graph.num_edges}, "
        f"k={k}"
    )
    print(
        f"uniform colorful probability p_k = {colorful_probability(k):.4f}\n"
    )

    header = (
        f"{'lambda':>8}{'p_colorful':>12}{'build s':>9}"
        f"{'table pairs':>13}{'top-motif cv':>14}"
    )
    print(header)
    print("-" * len(header))

    settings = [None, 0.20, 0.10, 0.05, 0.02]
    for lam in settings:
        builds, pairs, tops = run_setting(graph, k, lam)
        if not builds:
            print(f"{str(lam):>8}  (all colorings empty — lambda too small)")
            continue
        if lam is None:
            p = colorful_probability(k)
            label = "uniform"
        else:
            from repro.util.combinatorics import biased_colorful_probability

            p = biased_colorful_probability(k, lam)
            label = f"{lam:.2f}"
        tops_arr = np.asarray(tops)
        cv = tops_arr.std() / tops_arr.mean() if tops_arr.mean() > 0 else float("nan")
        print(
            f"{label:>8}{p:>12.5f}{np.mean(builds):>9.3f}"
            f"{int(np.mean(pairs)):>13,}{cv:>14.3f}"
        )

    print(
        "\nreading: smaller lambda shrinks the table (fewer stored pairs)\n"
        "and speeds the build, while the coefficient of variation of the\n"
        "estimate grows — exactly the Figure 6 trade-off."
    )


if __name__ == "__main__":
    main()
