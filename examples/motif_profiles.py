#!/usr/bin/env python
"""Motif profiles: comparing networks by their graphlet fingerprints.

The paper's introduction motivates motif counting with graphlet-based
network analysis: graphlets are the "building blocks" of networks and
their frequency vector is a structural fingerprint used for hypothesis
testing and graph classification.  This example computes the k=5 motif
frequency profile of several surrogate datasets and ranks dataset pairs
by profile similarity (ℓ1 distance), reproducing the classic observation
that social graphs cluster together while star-dominated and flat graphs
stand apart.

It also shows a classic downstream statistic — the global clustering
coefficient — computed two independent ways: from the motif profile at
k=3 and by wedge sampling (the path-sampling baseline of §1.1).

Run:  python examples/motif_profiles.py
"""

from __future__ import annotations

from itertools import combinations

from repro import MotivoConfig, MotivoCounter
from repro.baselines.path_sampling import estimate_triangle_count, exact_triangle_count
from repro.graph.datasets import load_dataset
from repro.graphlets.enumerate import clique_graphlet, path_graphlet


def motif_profile(name: str, k: int = 5, samples: int = 10_000):
    graph = load_dataset(name)
    counter = MotivoCounter(graph, MotivoConfig(k=k, seed=11))
    counter.build()
    estimates = counter.sample_naive(samples)
    return estimates.frequencies()


def l1(profile_a, profile_b) -> float:
    keys = set(profile_a) | set(profile_b)
    return sum(
        abs(profile_a.get(bits, 0.0) - profile_b.get(bits, 0.0))
        for bits in keys
    )


def main() -> None:
    names = ["facebook", "livejournal", "twitter", "amazon", "yelp"]
    print("computing k=5 motif profiles...")
    profiles = {name: motif_profile(name) for name in names}

    print("\npairwise profile distance (l1, 0 = identical, 2 = disjoint):")
    ranked = sorted(
        (
            (l1(profiles[a], profiles[b]), a, b)
            for a, b in combinations(names, 2)
        )
    )
    for distance, a, b in ranked:
        print(f"  {a:<12} vs {b:<12} {distance:6.3f}")
    closest = ranked[0]
    print(
        f"\nmost similar pair: {closest[1]} / {closest[2]} — "
        "the social-graph surrogates share their fingerprint"
    )

    print("\nglobal clustering coefficient, two ways (k=3 motifs):")
    print(f"{'dataset':<14}{'motif-based':>13}{'wedge-sampled':>15}{'exact':>9}")
    for name in ["facebook", "amazon", "twitter"]:
        graph = load_dataset(name)
        counter = MotivoCounter(graph, MotivoConfig(k=3, seed=12))
        counter.build()
        estimates = counter.sample_naive(20_000)
        triangles = estimates.counts.get(clique_graphlet(3), 0.0)
        wedges_in_paths = estimates.counts.get(path_graphlet(3), 0.0)
        # clustering = 3*triangles / wedges; wedges = paths + 3*triangles.
        motif_cc = 3 * triangles / (wedges_in_paths + 3 * triangles)
        sampled_triangles, wedges = estimate_triangle_count(graph, 30_000, 13)
        wedge_cc = 3 * sampled_triangles / wedges
        exact_cc = 3 * exact_triangle_count(graph) / wedges
        print(
            f"{name:<14}{motif_cc:>13.4f}{wedge_cc:>15.4f}{exact_cc:>9.4f}"
        )


if __name__ == "__main__":
    main()
