#!/usr/bin/env python
"""Rare motif hunting: adaptive graphlet sampling vs naive sampling.

This is the paper's Yelp story (§5.3, Figures 8-10) at laptop scale.  On a
star-dominated review graph virtually every k-graphlet is a star; naive
sampling spends its entire budget rediscovering the star and misses the
rare motifs, while AGS covers the star quickly, "deletes" it from the urn
by switching treelet shapes, and recovers motifs orders of magnitude rarer
with the *same* budget.

Run:  python examples/rare_motif_hunting.py
"""

from __future__ import annotations

from repro import MotivoConfig, MotivoCounter
from repro.graph.generators import star_heavy
from repro.graphlets.encoding import graphlet_edge_count
from repro.graphlets.enumerate import star_graphlet
from repro.sampling.estimates import rarest_frequency


def main() -> None:
    # A Yelp-like surrogate: a few enormous hubs with private leaves.
    graph = star_heavy(hubs=10, leaves_per_hub=250, bridge_edges=6, rng=42)
    k = 5
    budget = 8_000
    print(
        f"star-dominated graph: n={graph.num_vertices}, m={graph.num_edges}, "
        f"k={k}, budget={budget} samples"
    )

    counter = MotivoCounter(graph, MotivoConfig(k=k, seed=9))
    counter.build()

    naive = counter.sample_naive(budget)
    ags_result = counter.sample_ags(budget, cover_threshold=200)
    ags = ags_result.estimates

    star = star_graphlet(k)
    print(f"\nthe star graphlet owns {naive.frequency(star):.1%} of the "
          "naive estimate — everything else is rare")

    def well_seen(estimates):
        return {
            bits for bits, hits in estimates.hits.items() if hits >= 10
        }

    print("\n                         naive        AGS")
    print(f"distinct graphlets seen  {len(naive.hits):>5}      {len(ags.hits):>5}")
    print(
        f"seen in >=10 samples     {len(well_seen(naive)):>5}      "
        f"{len(well_seen(ags)):>5}"
    )
    naive_rare = rarest_frequency(naive, min_hits=10)
    ags_rare = rarest_frequency(ags, min_hits=10)
    print(
        "rarest well-seen freq    "
        f"{naive_rare if naive_rare is not None else float('nan'):>9.2e}  "
        f"{ags_rare if ags_rare is not None else float('nan'):>9.2e}"
    )
    print(
        f"\nAGS switched treelet shapes {ags_result.switches} times; "
        f"covered {len(ags_result.covered)} graphlets"
    )
    print("shape usage (samples per free treelet shape):")
    for shape, used in sorted(
        ags_result.shape_usage.items(), key=lambda kv: -kv[1]
    ):
        if used:
            print(f"  shape {shape:#06x}: {used}")

    print("\nrare motifs recovered by AGS but (nearly) invisible to naive:")
    print(f"{'graphlet':<20}{'AGS est.':>12}{'AGS hits':>10}{'naive hits':>12}")
    shown = 0
    for bits, value in sorted(ags.counts.items(), key=lambda kv: kv[1]):
        if bits == star and shown:
            continue
        naive_hits = naive.hits.get(bits, 0)
        ags_hits = ags.hits.get(bits, 0)
        if ags_hits >= 10 and naive_hits < 10:
            print(
                f"{bits:#08x} ({graphlet_edge_count(bits)}e)   "
                f"{value:>12.1f}{ags_hits:>10}{naive_hits:>12}"
            )
            shown += 1
        if shown >= 8:
            break
    if not shown:
        print("  (none at this scale — increase leaves_per_hub)")


if __name__ == "__main__":
    main()
