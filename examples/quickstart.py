#!/usr/bin/env python
"""Quickstart: count 5-node motifs on a social-graph surrogate.

Demonstrates the complete motivo pipeline in a few lines:

1. load a graph (here the Facebook surrogate from the paper's Table 1);
2. build the color-coding treelet tables (the build-up phase);
3. draw samples from the treelet urn and turn them into motif counts;
4. sanity-check the estimates against exact counts at k = 4, where exact
   enumeration is still cheap.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import MotivoConfig, MotivoCounter
from repro.exact.esu import exact_counts
from repro.graph.datasets import load_dataset
from repro.graphlets.encoding import graphlet_edge_count
from repro.sampling.estimates import count_errors


def describe(bits: int, k: int) -> str:
    return f"{bits:#08x} ({graphlet_edge_count(bits)} edges)"


def main() -> None:
    graph = load_dataset("facebook")
    print(f"host graph: n={graph.num_vertices}, m={graph.num_edges}")

    # ------------------------------------------------------------------
    # k = 5: the paper's entry-level motif size (21 distinct graphlets).
    # ------------------------------------------------------------------
    k = 5
    counter = MotivoCounter(graph, MotivoConfig(k=k, seed=7))
    start = time.perf_counter()
    counter.build()
    print(f"\nbuild-up phase (k={k}): {time.perf_counter() - start:.2f}s")
    print(f"urn contains ~{counter.urn.total_treelets:.3e} colorful treelets")

    start = time.perf_counter()
    estimates = counter.sample_naive(30_000)
    rate = 30_000 / (time.perf_counter() - start)
    print(f"sampling: 30k samples at {rate:,.0f} samples/s")
    print(f"distinct {k}-graphlets observed: {estimates.distinct_graphlets()}")

    print(f"\ntop motifs (k={k}):")
    print(f"{'graphlet':<22}{'est. count':>14}{'frequency':>12}")
    for bits, count in estimates.top(8):
        print(
            f"{describe(bits, k):<22}{count:>14.0f}"
            f"{estimates.frequency(bits):>12.4f}"
        )

    # ------------------------------------------------------------------
    # k = 4 cross-check against exact enumeration (ESU).
    # ------------------------------------------------------------------
    k = 4
    print(f"\ncross-check at k={k} against exact ESU enumeration:")
    truth = exact_counts(graph, k)
    counter4 = MotivoCounter(graph, MotivoConfig(k=k, seed=8))
    averaged = counter4.averaged_naive(runs=5, samples_per_run=30_000)
    errors = count_errors(averaged, truth)
    print(f"{'graphlet':<22}{'exact':>12}{'estimate':>12}{'err_H':>9}")
    for bits in sorted(truth, key=truth.get, reverse=True):
        print(
            f"{describe(bits, k):<22}{truth[bits]:>12}"
            f"{averaged.counts.get(bits, 0.0):>12.0f}"
            f"{errors[bits]:>9.3f}"
        )


if __name__ == "__main__":
    main()
