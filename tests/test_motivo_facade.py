"""Tests for the high-level MotivoCounter facade."""

from __future__ import annotations

import os

import pytest

from repro.errors import BuildError, SamplingError
from repro.exact.brute import brute_force_counts
from repro.graph.generators import erdos_renyi
from repro.motivo import MotivoConfig, MotivoCounter


class TestLifecycle:
    def test_sampling_requires_build(self):
        counter = MotivoCounter(erdos_renyi(20, 50, rng=0), MotivoConfig(k=4))
        with pytest.raises(SamplingError, match="build"):
            counter.sample_naive(10)

    def test_k_validation(self):
        with pytest.raises(BuildError):
            MotivoCounter(erdos_renyi(10, 20, rng=0), MotivoConfig(k=1))

    def test_build_then_sample(self):
        counter = MotivoCounter(
            erdos_renyi(25, 60, rng=1), MotivoConfig(k=4, seed=2)
        )
        urn = counter.build()
        assert urn.total_treelets > 0
        estimates = counter.sample_naive(500)
        assert estimates.samples == 500
        assert estimates.total > 0

    def test_deterministic_given_seed(self):
        def run():
            counter = MotivoCounter(
                erdos_renyi(25, 60, rng=3), MotivoConfig(k=4, seed=99)
            )
            counter.build()
            return counter.sample_naive(300).counts

        assert run() == run()

    def test_ags_pipeline(self):
        counter = MotivoCounter(
            erdos_renyi(25, 60, rng=4), MotivoConfig(k=4, seed=5)
        )
        counter.build()
        result = counter.sample_ags(800, cover_threshold=100)
        assert result.estimates.samples == 800
        assert sum(result.shape_usage.values()) == 800


class TestConfigurationPlumb:
    def test_spill_dir_used(self, tmp_path):
        spill = str(tmp_path / "layers")
        counter = MotivoCounter(
            erdos_renyi(20, 50, rng=6),
            MotivoConfig(k=4, seed=7, spill_dir=spill),
        )
        counter.build()
        assert os.path.exists(os.path.join(spill, "layer_4.counts.npy"))
        assert counter.sample_naive(100).total > 0

    def test_sigma_cache_dir_used(self, tmp_path):
        cache_dir = str(tmp_path / "sigma")
        counter = MotivoCounter(
            erdos_renyi(20, 50, rng=8),
            MotivoConfig(k=4, seed=9, sigma_cache_dir=cache_dir),
        )
        counter.build()
        counter.sample_ags(300, cover_threshold=50)
        assert os.path.exists(os.path.join(cache_dir, "sigma_k4.json"))

    def test_biased_coloring_plumbed(self):
        counter = MotivoCounter(
            erdos_renyi(200, 600, rng=10),
            MotivoConfig(k=4, seed=11, biased_lambda=0.1),
        )
        counter.build()
        assert counter.coloring.lam == pytest.approx(0.1)
        histogram = counter.coloring.color_histogram()
        assert histogram[0] > histogram[1:].max() * 2

    def test_zero_rooting_off(self):
        counter = MotivoCounter(
            erdos_renyi(20, 50, rng=12),
            MotivoConfig(k=4, seed=13, zero_rooting=False),
        )
        counter.build()
        assert not counter.urn.table.zero_rooted


class TestAveraging:
    def test_averaged_naive_tightens_estimates(self):
        """Averaging colorings must approach the true (uncolored) counts."""
        graph = erdos_renyi(16, 36, rng=14)
        k = 3
        truth = brute_force_counts(graph, k)
        counter = MotivoCounter(graph, MotivoConfig(k=k, seed=15))
        averaged = counter.averaged_naive(runs=30, samples_per_run=3000)
        assert averaged.method == "naive-averaged"
        for bits, count in truth.items():
            if count >= 5:
                assert averaged.counts[bits] == pytest.approx(count, rel=0.3)

    def test_averaging_needs_runs(self):
        counter = MotivoCounter(erdos_renyi(10, 20, rng=16), MotivoConfig(k=3))
        with pytest.raises(SamplingError):
            counter.averaged_naive(0, 10)
