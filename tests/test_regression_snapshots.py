"""Deterministic regression snapshots.

These pin down exact numeric outputs of the pipeline on fixed seeds.  They
carry no mathematical meaning on their own — the invariants live in the
other test modules — but they catch *accidental* behavioral drift during
refactors: any change to the coloring stream, treelet ordering, the DP, or
the sampling recursion shows up here first, loudly.

If a change is intentional (e.g. a new canonical order), regenerate the
constants and say so in the commit.
"""

from __future__ import annotations

import pytest

from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.urn import TreeletUrn
from repro.graph.datasets import load_dataset
from repro.motivo import MotivoConfig, MotivoCounter


class TestBuildSnapshots:
    @pytest.fixture(scope="class")
    def facebook_urn(self):
        graph = load_dataset("facebook")
        coloring = ColoringScheme.uniform(graph.num_vertices, 5, rng=4242)
        table = build_table(graph, coloring)
        return TreeletUrn(graph, table, coloring)

    def test_total_treelets(self, facebook_urn):
        assert facebook_urn.total_treelets == pytest.approx(2_261_251.0)

    def test_total_pairs(self, facebook_urn):
        assert facebook_urn.table.total_pairs() == 17_129

    def test_shape_totals(self, facebook_urn):
        expected = {0xAA: 391_026.0, 0xAC: 1_304_492.0, 0xCC: 565_733.0}
        for shape, value in expected.items():
            assert facebook_urn.shape_total(shape) == pytest.approx(value)

    def test_shape_totals_cover_everything(self, facebook_urn):
        total = sum(
            facebook_urn.shape_total(s)
            for s in facebook_urn.registry.free_shapes
        )
        assert total == pytest.approx(facebook_urn.total_treelets)


class TestEstimateSnapshots:
    def test_naive_top3(self):
        """Constants regenerated when batched sampling became the default
        draw path (the uniform-matrix discipline consumes the generator
        differently from the old scalar stream — an intentional change)."""
        graph = load_dataset("facebook")
        counter = MotivoCounter(graph, MotivoConfig(k=4, seed=777))
        counter.build()
        estimates = counter.sample_naive(2000)
        top3 = [(bits, round(value, 1)) for bits, value in estimates.top(3)]
        assert top3 == [
            (0x32, 743_479.6),
            (0x34, 606_804.5),
            (0x36, 78_217.7),
        ]
        assert sum(estimates.hits.values()) == 2000

    def test_dataset_fingerprints(self):
        """Surrogate graphs themselves are frozen."""
        expected = {
            "facebook": (600, 2985),
            "berkstan": (900, 3095),
            "amazon": (1200, 3591),
            "yelp": (3630, 3652),
        }
        for name, (n, m) in expected.items():
            graph = load_dataset(name)
            assert (graph.num_vertices, graph.num_edges) == (n, m), name
