"""Tests for the concurrent sampling service (repro.serve).

The load-bearing property is the determinism contract: every served
response must be bit-identical to a single-threaded
``MotivoCounter.from_artifact(..., reseed=seed)`` loop issuing the same
request sequence — whatever the concurrency, and whether or not draws
got coalesced into shared batches.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.artifacts import ArtifactCache, save_table
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.errors import SamplingError, ServeError
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.motivo import MotivoConfig, MotivoCounter
from repro.serve import SamplingService, serve_http, session_seed


@pytest.fixture(scope="module")
def host():
    return erdos_renyi(90, 270, rng=5)


@pytest.fixture(scope="module")
def cache_root(host, tmp_path_factory):
    """An artifact cache holding one k=4 build of the host graph."""
    root = str(tmp_path_factory.mktemp("serve-cache"))
    counter = MotivoCounter(
        host, MotivoConfig(k=4, seed=11, artifact_dir=root)
    )
    counter.build()
    return root


@pytest.fixture()
def service(host, cache_root):
    with SamplingService(cache_root) as svc:
        svc.add_graph(host)
        yield svc


def _key(cache_root) -> str:
    return ArtifactCache(cache_root).entries()[0].key


def _reference(host, cache_root, seed, plan):
    """Single-threaded reference: one warm counter, requests in order.

    ``plan`` is a list of ("naive", samples) / ("ags", budget, cover)
    tuples; returns the estimates list.
    """
    counter = MotivoCounter.from_artifact(
        host, ArtifactCache(cache_root).path(_key(cache_root)), reseed=seed
    )
    out = []
    for step in plan:
        if step[0] == "naive":
            out.append(counter.sample_naive(step[1]))
        else:
            out.append(counter.sample_ags(step[1], step[2]).estimates)
    return out


class TestUniformsSplitEquivalence:
    """Coalescing correctness rests on row-independence of the batched
    descent: one call over concatenated uniform blocks must equal the
    separate calls bit for bit."""

    def test_sample_batch_concat_equals_split(self, host):
        counter = MotivoCounter(host, MotivoConfig(k=4, seed=3))
        urn = counter.build()
        rng = np.random.default_rng(42)
        uniforms = rng.random((257, urn.draw_width))
        merged = urn.sample_batch(257, uniforms=uniforms)
        for lo, hi in ((0, 100), (100, 101), (101, 257)):
            part = urn.sample_batch(hi - lo, uniforms=uniforms[lo:hi])
            for merged_arr, part_arr in zip(merged, part):
                assert np.array_equal(merged_arr[lo:hi], part_arr)

    def test_sample_shape_batch_concat_equals_split(self, host):
        counter = MotivoCounter(host, MotivoConfig(k=4, seed=3))
        urn = counter.build()
        shape = max(
            (s for s in urn.registry.free_shapes if urn.shape_total(s) > 0),
            key=urn.shape_total,
        )
        rng = np.random.default_rng(43)
        uniforms = rng.random((64, urn.draw_width))
        merged = urn.sample_shape_batch(shape, 64, uniforms=uniforms)
        part_a = urn.sample_shape_batch(shape, 40, uniforms=uniforms[:40])
        part_b = urn.sample_shape_batch(shape, 24, uniforms=uniforms[40:])
        for merged_arr, a, b in zip(merged, part_a, part_b):
            assert np.array_equal(merged_arr[:40], a)
            assert np.array_equal(merged_arr[40:], b)

    def test_uniforms_consume_generator_like_direct_draw(self, host):
        counter = MotivoCounter(host, MotivoConfig(k=4, seed=3))
        urn = counter.build()
        direct = urn.sample_batch(50, np.random.default_rng(7))
        rng = np.random.default_rng(7)
        pre = urn.sample_batch(
            50, uniforms=rng.random((50, urn.draw_width))
        )
        for direct_arr, pre_arr in zip(direct, pre):
            assert np.array_equal(direct_arr, pre_arr)

    def test_bad_uniforms_shape_rejected(self, host):
        counter = MotivoCounter(host, MotivoConfig(k=4, seed=3))
        urn = counter.build()
        with pytest.raises(SamplingError, match="shape"):
            urn.sample_batch(10, uniforms=np.zeros((10, 3)))


class TestServiceDeterminism:
    def test_single_session_matches_reference(self, host, cache_root, service):
        result = service.count(samples=500, session="a", seed=101)
        (ref,) = _reference(host, cache_root, 101, [("naive", 500)])
        assert result.estimates.counts == ref.counts
        assert result.estimates.hits == ref.hits
        assert result.sequence == 0

    def test_session_stream_continues_across_requests(
        self, host, cache_root, service
    ):
        service.count(samples=400, session="a", seed=101)
        second = service.count(samples=400, session="a")
        refs = _reference(
            host, cache_root, 101, [("naive", 400), ("naive", 400)]
        )
        assert second.estimates.counts == refs[1].counts
        assert second.sequence == 1

    def test_ags_matches_reference(self, host, cache_root, service):
        result = service.count(
            estimator="ags", samples=600, session="g", seed=77,
            cover_threshold=200,
        )
        (ref,) = _reference(host, cache_root, 77, [("ags", 600, 200)])
        assert result.estimates.counts == ref.counts
        assert "covered" in result.extras

    def test_default_seed_is_stable_per_session_id(
        self, host, cache_root, service
    ):
        result = service.count(samples=300, session="stable-client")
        (ref,) = _reference(
            host, cache_root, session_seed("stable-client"),
            [("naive", 300)],
        )
        assert result.estimates.counts == ref.counts

    def test_concurrent_sessions_bit_identical(
        self, host, cache_root, service
    ):
        sessions = 8
        barrier = threading.Barrier(sessions)
        results: dict = {}

        def worker(index: int) -> None:
            barrier.wait()
            estimator = "ags" if index % 2 else "naive"
            results[index] = service.count(
                estimator=estimator, samples=700,
                session=f"s{index}", seed=500 + index,
            )

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(sessions):
            plan = (
                [("ags", 700, 300)] if index % 2 else [("naive", 700)]
            )
            (ref,) = _reference(host, cache_root, 500 + index, plan)
            assert results[index].estimates.counts == ref.counts, index
            assert results[index].estimates.hits == ref.hits, index

    def test_seed_conflict_rejected(self, service):
        service.count(samples=100, session="fixed", seed=5)
        with pytest.raises(ServeError, match="already open"):
            service.count(samples=100, session="fixed", seed=6)
        # Same seed again is fine (idempotent declaration).
        service.count(samples=100, session="fixed", seed=5)


class TestServiceLifecycle:
    def test_sole_artifact_resolves_without_key(self, service):
        result = service.count(samples=100, session="x", seed=1)
        assert result.key == _key(service.cache.root)

    def test_unknown_key_is_serve_error(self, service):
        with pytest.raises(ServeError, match="no servable artifact"):
            service.count(artifact="deadbeef", samples=10, session="x")

    def test_validation(self, service):
        with pytest.raises(ServeError, match="estimator"):
            service.count(estimator="exact", samples=10)
        with pytest.raises(ServeError, match="samples"):
            service.count(samples=0)

    def test_handle_reused_across_requests(self, service):
        service.count(samples=50, session="r", seed=1)
        service.count(samples=50, session="r")
        assert service.healthz()["open_tables"] == 1
        assert (
            service.instrumentation.counters["serve_tables_opened"] == 1
        )

    def test_evict_while_served(self, host, cache_root):
        """An in-flight request survives eviction; later requests miss."""
        with SamplingService(cache_root) as service:
            service.add_graph(host)
            key = _key(cache_root)
            handle = service.open(key)
            assert handle.acquire()  # simulate an in-flight request
            assert service.evict(key, from_disk=False)
            assert handle.closing
            # The in-flight holder still samples fine.
            estimates, _extras = handle.run(
                "naive", 200, np.random.default_rng(0), 300
            )
            assert estimates.counts
            handle.release()
            assert handle.urn is None  # closed once drained
            # The service reopens from disk for new requests.
            result = service.count(samples=50, session="y", seed=2)
            assert result.estimates.counts

    def test_evict_from_disk_then_request_fails(self, host, cache_root,
                                                tmp_path):
        import shutil

        root = str(tmp_path / "cache")
        shutil.copytree(cache_root, root)
        with SamplingService(root) as service:
            service.add_graph(host)
            key = _key(root)
            service.count(artifact=key, samples=50, session="z", seed=1)
            assert service.evict(key)  # from disk too
            with pytest.raises(ServeError, match="no servable artifact"):
                service.count(artifact=key, samples=50, session="z2")

    def test_failed_request_poisons_the_session(self, service, monkeypatch):
        """A request that dies mid-estimate may have consumed part of
        the session stream; continuing would silently break the
        determinism contract, so the session refuses further use."""
        from repro.serve.service import TableHandle

        service.count(samples=50, session="doomed", seed=4)

        def boom(self, estimator, samples, rng, cover_threshold):
            rng.random(3)  # partially consume the stream
            raise RuntimeError("mid-estimate failure")

        monkeypatch.setattr(TableHandle, "run", boom)
        with pytest.raises(RuntimeError, match="mid-estimate"):
            service.count(samples=50, session="doomed")
        monkeypatch.undo()
        with pytest.raises(ServeError, match="poisoned"):
            service.count(samples=50, session="doomed")
        # Other sessions are unaffected.
        assert service.count(samples=50, session="fine", seed=4)

    def test_sessions_pruned_past_cap_and_dropped_on_evict(
        self, host, cache_root, tmp_path
    ):
        import shutil

        root = str(tmp_path / "cache")
        shutil.copytree(cache_root, root)
        with SamplingService(root, max_sessions=4) as service:
            service.add_graph(host)
            key = _key(root)
            for index in range(7):
                service.count(
                    artifact=key, samples=20,
                    session=f"c{index}", seed=index,
                )
            assert len(service._sessions) == 4
            # Oldest idle sessions went first; the newest survive.
            assert (key, "c6") in service._sessions
            assert (key, "c0") not in service._sessions
            service.evict(key, from_disk=False)
            assert service._sessions == {}

    def test_draw_leader_failure_does_not_strand_waiters(
        self, host, cache_root
    ):
        """If the coalesced urn call blows up, every queued job gets the
        error instead of waiting forever."""
        with SamplingService(cache_root) as service:
            service.add_graph(host)
            handle = service.open(_key(cache_root))

            def explode(*args, **kwargs):
                raise MemoryError("boom")

            original = handle.urn.sample_batch
            handle.urn.sample_batch = explode
            try:
                with pytest.raises(MemoryError):
                    handle.draw(16, np.random.default_rng(0))
            finally:
                handle.urn.sample_batch = original
            # The queue is clean: a later draw succeeds.
            vertices, _t, _m = handle.draw(16, np.random.default_rng(0))
            assert vertices.shape == (16, handle.k)

    def test_artifacts_listing_reports_warm_state(self, service):
        listing = service.artifacts()
        assert len(listing) == 1
        assert listing[0]["warm"] is False
        service.count(samples=50, session="w", seed=1)
        assert service.artifacts()[0]["warm"] is True


class TestEmptyUrnMatrix:
    """The same degenerate input must answer zeros — never raise —
    through every sampling path: single naive, single AGS, the
    ensemble engine, and a served request."""

    @pytest.fixture(scope="class")
    def tiny(self):
        # Two vertices cannot host a connected 4-subgraph.
        return Graph.from_edges([(0, 1)], n=2)

    def test_single_naive(self, tiny):
        counter = MotivoCounter(tiny, MotivoConfig(k=4, seed=1))
        assert counter.build() is None
        assert counter.empty_urn
        estimates = counter.sample_naive(100)
        assert estimates.empty_urn
        assert estimates.counts == {} and estimates.hits == {}
        assert estimates.samples == 100

    def test_single_ags(self, tiny):
        counter = MotivoCounter(tiny, MotivoConfig(k=4, seed=1))
        counter.build()
        result = counter.sample_ags(100)
        assert result.estimates.empty_urn
        assert result.estimates.counts == {}
        assert result.covered == set() and result.switches == 0

    def test_json_round_trips_the_flag(self, tiny):
        from repro.sampling.estimates import GraphletEstimates

        counter = MotivoCounter(tiny, MotivoConfig(k=4, seed=1))
        counter.build()
        restored = GraphletEstimates.from_json(
            counter.sample_naive(10).to_json()
        )
        assert restored.empty_urn

    def test_ensemble_records_null_members(self, tiny):
        from repro.engine import PipelineEngine

        result = PipelineEngine(
            tiny, MotivoConfig(k=4, seed=1), colorings=3
        ).run_naive(50)
        assert result.empty_runs == 3
        assert result.estimates.counts == {}

    def test_save_artifact_refuses_empty_build(self, tiny, tmp_path):
        counter = MotivoCounter(tiny, MotivoConfig(k=4, seed=1))
        counter.build()
        with pytest.raises(SamplingError, match="empty-urn"):
            counter.save_artifact(str(tmp_path / "a"))

    def test_cached_build_skips_persisting_empty(self, tiny, tmp_path):
        root = str(tmp_path / "cache")
        counter = MotivoCounter(
            tiny, MotivoConfig(k=4, seed=1, artifact_dir=root)
        )
        assert counter.build() is None
        assert ArtifactCache(root).entries() == []
        assert counter.sample_naive(10).empty_urn

    def test_served_empty_table_returns_zeros(self, tmp_path):
        """An artifact whose table has no colorful k-treelets serves
        '0 occurrences', not a 500."""
        graph = Graph.from_edges([(0, 1)], n=2)
        coloring = ColoringScheme.fixed([0, 1], k=3)
        table = build_table(graph, coloring)
        root = tmp_path / "cache"
        root.mkdir()
        save_table(str(root / "emptykey"), table, coloring, graph)
        with SamplingService(str(root)) as service:
            service.add_graph(graph)
            result = service.count(
                artifact="emptykey", samples=25, session="e"
            )
        assert result.estimates.empty_urn
        assert result.estimates.counts == {}


class TestHTTP:
    @pytest.fixture()
    def server(self, service):
        server = serve_http(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def _post(self, server, path, payload):
        request = urllib.request.Request(
            self._url(server, path),
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json.load(response)

    def test_healthz_and_artifacts(self, server):
        with urllib.request.urlopen(self._url(server, "/healthz")) as resp:
            health = json.load(resp)
        assert health["status"] == "ok"
        with urllib.request.urlopen(self._url(server, "/artifacts")) as resp:
            listing = json.load(resp)
        assert len(listing["artifacts"]) == 1

    def test_count_matches_cli_sample_document(
        self, host, cache_root, server
    ):
        body = self._post(
            server, "/count",
            {"samples": 300, "session": "h", "seed": 9},
        )
        (ref,) = _reference(host, cache_root, 9, [("naive", 300)])
        assert body["counts"] == json.loads(ref.to_json())["counts"]
        assert body["hits"] == json.loads(ref.to_json())["hits"]
        assert body["sequence"] == 0
        assert body["empty_urn"] is False

    def test_error_statuses(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            self._post(server, "/count", {"estimator": "exact"})
        assert info.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as info:
            self._post(server, "/count", {"artifact": "nope"})
        assert info.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as info:
            self._post(server, "/nope", {})
        assert info.value.code == 404
        with urllib.request.urlopen(self._url(server, "/healthz")):
            pass  # server still alive after errors

    def test_metrics_endpoint_serves_prometheus_text(self, server):
        self._post(server, "/count", {"samples": 200, "session": "m",
                                      "seed": 4})
        request = urllib.request.Request(self._url(server, "/metrics"))
        with urllib.request.urlopen(request) as response:
            content_type = response.headers.get("Content-Type")
            body = response.read().decode("utf-8")
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE motivo_serve_requests_total counter" in body
        assert "# TYPE motivo_serve_request_seconds histogram" in body
        assert 'motivo_serve_request_seconds_bucket{le="' in body
        assert 'motivo_serve_request_seconds_bucket{le="+Inf"}' in body
        assert "motivo_serve_request_seconds_count" in body
        assert "motivo_serve_open_tables 1" in body
        # Every non-comment line parses as `name[{labels}] value`.
        import re

        line_ok = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [0-9.eE+-]+$'
        )
        for line in body.splitlines():
            if not line.startswith("# TYPE "):
                assert line_ok.match(line), line

    def test_every_route_echoes_a_trace_id(self, server):
        for path in ("/healthz", "/metrics", "/artifacts"):
            with urllib.request.urlopen(self._url(server, path)) as resp:
                assert resp.headers.get("X-Trace-Id"), path
        # Errors carry one too.
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(self._url(server, "/nope"))
        assert info.value.headers.get("X-Trace-Id")

    def test_inbound_trace_id_honored_and_sanitized(self, server):
        request = urllib.request.Request(
            self._url(server, "/healthz"),
            headers={"X-Trace-Id": "client-123"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.headers.get("X-Trace-Id") == "client-123"
        request = urllib.request.Request(
            self._url(server, "/healthz"),
            headers={"X-Trace-Id": "bad id\twith%chars"},
        )
        with urllib.request.urlopen(request) as response:
            echoed = response.headers.get("X-Trace-Id")
        assert echoed == "bad_id_with_chars"

    def test_concurrent_http_sessions_bit_identical(
        self, host, cache_root, server
    ):
        results: dict = {}
        barrier = threading.Barrier(4)

        def worker(index: int) -> None:
            barrier.wait()
            results[index] = self._post(
                server, "/count",
                {
                    "samples": 400,
                    "session": f"hc{index}",
                    "seed": 900 + index,
                },
            )

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(4):
            (ref,) = _reference(
                host, cache_root, 900 + index, [("naive", 400)]
            )
            expected = json.loads(ref.to_json())["counts"]
            assert results[index]["counts"] == expected, index


class TestTelemetryNameStability:
    """Dashboards and alerts key on these names: renaming a metric or a
    healthz field must break this test before it breaks a dashboard."""

    def test_healthz_document_keys_pinned(self, service):
        service.count(samples=200, session="pin", seed=1)
        health = service.healthz()
        assert sorted(health) == [
            "bytes_on_disk",
            "coalesced_batches",
            "coalesced_draws",
            "open_tables",
            "requests",
            "samples",
            "sampling",
            "sessions",
            "status",
            "updates",
            "uptime_seconds",
        ]
        assert sorted(health["updates"]) == [
            "applied",
            "batches",
            "propagate_seconds",
            "rows_touched",
        ]
        assert sorted(health["sampling"]) == [
            "budget_fallbacks",
            "classified",
            "classify_cache_hits",
            "classify_seconds",
            "descent_seconds",
            "gather_builds",
            "gather_seconds",
            "plan_compile_seconds",
            "plan_compiles",
            "transient_builds",
        ]

    def test_metrics_families_pinned(self, service):
        service.count(samples=200, session="pin2", seed=2)
        body = service.metrics_text()
        families = {
            line.split()[3]
            for line in body.splitlines()
            if line.startswith("# TYPE ")
        }
        families_named = {
            line.split()[2]
            for line in body.splitlines()
            if line.startswith("# TYPE ")
        }
        assert families <= {"counter", "gauge", "histogram"}
        # The serving plane's contract families must always be present.
        expected = {
            "motivo_serve_requests_total",
            "motivo_serve_samples_total",
            "motivo_serve_tables_opened_total",
            "motivo_serve_request_seconds",
            "motivo_serve_open_tables",
            "motivo_serve_sessions",
            "motivo_serve_uptime_seconds",
            "motivo_artifact_cache_bytes",
        }
        missing = expected - families_named
        assert not missing, f"missing metric families: {sorted(missing)}"

    def test_request_latency_quantiles_derivable(self, service):
        from repro.telemetry import histogram_quantile

        for index in range(3):
            service.count(samples=100, session=f"q{index}", seed=index)
        state = service.registry.histogram_state("serve_request_seconds")
        assert sum(state["counts"]) == 3
        p50 = histogram_quantile(state, 0.5)
        p99 = histogram_quantile(state, 0.99)
        assert 0 < p50 <= p99
