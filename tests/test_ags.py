"""Tests for adaptive graphlet sampling (§4).

The headline behavior: on star-dominated graphs (the Yelp regime) naive
sampling sees almost nothing but the star, while AGS switches treelet
shapes once the star is covered and recovers the rare graphlets with
multiplicative accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.urn import TreeletUrn
from repro.exact.brute import brute_force_counts
from repro.exact.esu import exact_colorful_counts
from repro.graph.generators import erdos_renyi, star_heavy
from repro.graphlets.enumerate import star_graphlet
from repro.graphlets.spanning import SigmaCache
from repro.sampling.ags import ags_estimate, covering_threshold
from repro.sampling.naive import naive_estimate
from repro.sampling.occurrences import GraphletClassifier


def build_pipeline(graph, k, seed):
    coloring = ColoringScheme.uniform(graph.num_vertices, k, rng=seed)
    table = build_table(graph, coloring)
    urn = TreeletUrn(graph, table, coloring)
    classifier = GraphletClassifier(graph, k)
    return urn, classifier, coloring


class TestCoveringThreshold:
    def test_formula(self):
        # c̄ = ceil(4/ε² ln(2s/δ)) with s = census(k).
        from math import ceil, log

        value = covering_threshold(0.5, 0.1, 5)
        assert value == ceil(4 / 0.25 * log(2 * 21 / 0.1))

    def test_bounds(self):
        with pytest.raises(SamplingError):
            covering_threshold(0.0, 0.1, 5)
        with pytest.raises(SamplingError):
            covering_threshold(0.5, 1.5, 5)


class TestBasicBehavior:
    def test_matches_exact_on_small_graph(self, rng):
        graph = erdos_renyi(18, 40, rng=50)
        k = 4
        urn, classifier, coloring = build_pipeline(graph, k, seed=51)
        exact_colorful = brute_force_counts(graph, k, coloring=coloring)
        result = ags_estimate(
            urn, classifier, budget=40_000, cover_threshold=200, rng=rng
        )
        p_k = coloring.colorful_probability()
        for bits, colorful_count in exact_colorful.items():
            if colorful_count >= 3:
                target = colorful_count / p_k
                assert result.estimates.counts[bits] == pytest.approx(
                    target, rel=0.3
                ), hex(bits)

    def test_validation(self, rng):
        graph = erdos_renyi(18, 40, rng=52)
        urn, classifier, _ = build_pipeline(graph, 4, seed=53)
        with pytest.raises(SamplingError):
            ags_estimate(urn, classifier, budget=0, rng=rng)
        with pytest.raises(SamplingError):
            ags_estimate(urn, classifier, budget=10, cover_threshold=0, rng=rng)

    def test_shape_usage_sums_to_budget(self, rng):
        graph = erdos_renyi(18, 40, rng=54)
        urn, classifier, _ = build_pipeline(graph, 4, seed=55)
        result = ags_estimate(
            urn, classifier, budget=500, cover_threshold=100, rng=rng
        )
        assert sum(result.shape_usage.values()) == 500

    def test_sigma_cache_populated(self, rng, tmp_path):
        graph = erdos_renyi(18, 40, rng=56)
        urn, classifier, _ = build_pipeline(graph, 4, seed=57)
        cache = SigmaCache(str(tmp_path / "sigma"))
        ags_estimate(
            urn, classifier, budget=300, cover_threshold=100,
            rng=rng, sigma_cache=cache,
        )
        assert len(cache) > 0
        import os

        assert os.path.exists(tmp_path / "sigma" / "sigma_k4.json")


class TestRareGraphletRecoverySmall:
    """AGS accuracy vs exact truth on a moderately skewed graph (k=4)."""

    @pytest.fixture(scope="class")
    def star_world(self):
        graph = star_heavy(12, 40, bridge_edges=8, rng=58)
        k = 4
        coloring = ColoringScheme.uniform(graph.num_vertices, k, rng=59)
        table = build_table(graph, coloring)
        urn = TreeletUrn(graph, table, coloring)
        classifier = GraphletClassifier(graph, k)
        truth = exact_colorful_counts(graph, k, coloring)
        return graph, urn, classifier, coloring, truth

    def test_stars_dominate_the_truth(self, star_world):
        _, _, _, _, truth = star_world
        star = star_graphlet(4)
        star_fraction = truth[star] / sum(truth.values())
        assert star_fraction > 0.75

    def test_ags_switches_and_covers(self, star_world):
        _, urn, classifier, _, _ = star_world
        result = ags_estimate(
            urn, classifier, budget=6000, cover_threshold=150,
            rng=np.random.default_rng(60),
        )
        assert result.switches >= 1
        assert star_graphlet(4) in result.covered
        # After covering the star, most samples go to other shapes.
        star_usage = max(result.shape_usage.values())
        assert star_usage < 6000

    def test_ags_rare_estimates_accurate(self, star_world):
        _, urn, classifier, coloring, truth = star_world
        result = ags_estimate(
            urn, classifier, budget=8000, cover_threshold=150,
            rng=np.random.default_rng(63),
        )
        p_k = coloring.colorful_probability()
        checked = 0
        for bits, colorful_count in truth.items():
            if result.estimates.hits.get(bits, 0) >= 100:
                target = colorful_count / p_k
                assert result.estimates.counts[bits] == pytest.approx(
                    target, rel=0.5
                ), hex(bits)
                checked += 1
        assert checked >= 2


class TestYelpRegime:
    """The Figure 8-10 showcase: >99% stars, naive sees almost nothing
    else, AGS recovers the rare graphlets with the same budget (k=5)."""

    @pytest.fixture(scope="class")
    def yelp_world(self):
        graph = star_heavy(6, 150, bridge_edges=3, rng=64)
        k = 5
        coloring = ColoringScheme.uniform(graph.num_vertices, k, rng=65)
        table = build_table(graph, coloring)
        urn = TreeletUrn(graph, table, coloring)
        classifier = GraphletClassifier(graph, k)
        budget = 2500
        naive = naive_estimate(
            urn, classifier, budget, np.random.default_rng(66)
        )
        ags = ags_estimate(
            urn, classifier, budget, cover_threshold=150,
            rng=np.random.default_rng(67),
        )
        return naive, ags

    def test_naive_sees_almost_only_stars(self, yelp_world):
        # At test scale the star dominance is ~80% (it approaches the
        # paper's 99.99% only as leaves-per-hub grows); naive sampling
        # sees essentially the two bulk classes and nothing else.
        naive, _ = yelp_world
        assert naive.frequency(star_graphlet(5)) > 0.75
        well_seen = [b for b, h in naive.hits.items() if h >= 10]
        assert len(well_seen) <= 2

    def test_ags_finds_strictly_more_graphlets(self, yelp_world):
        naive, ags = yelp_world
        well_seen_naive = {
            bits for bits, hit_count in naive.hits.items() if hit_count >= 10
        }
        well_seen_ags = {
            bits
            for bits, hit_count in ags.estimates.hits.items()
            if hit_count >= 10
        }
        assert well_seen_naive <= well_seen_ags
        assert len(well_seen_ags) >= len(well_seen_naive) + 2

    def test_ags_reaches_rarer_frequencies(self, yelp_world):
        """The Figure 10 metric: AGS's rarest ≥10-hit graphlet is orders
        of magnitude rarer than naive's."""
        from repro.sampling.estimates import rarest_frequency

        naive, ags = yelp_world
        naive_rarest = rarest_frequency(naive, min_hits=10)
        ags_rarest = rarest_frequency(ags.estimates, min_hits=10)
        assert ags_rarest is not None
        assert naive_rarest is None or ags_rarest < naive_rarest / 10

    def test_dominant_class_estimates_agree(self, yelp_world):
        """Both estimators are accurate on the star, so they must agree."""
        naive, ags = yelp_world
        star = star_graphlet(5)
        assert ags.estimates.counts[star] == pytest.approx(
            naive.counts[star], rel=0.35
        )
