"""Tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    hub_and_spokes,
    lollipop,
    path_graph,
    random_regular,
    star_graph,
    star_heavy,
    stochastic_block,
)


class TestDeterministicShapes:
    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert g.degrees().tolist() == [5] * 6

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.num_edges == 7
        assert g.degrees().tolist() == [2] * 7
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert sorted(g.degrees().tolist()) == [1, 1, 2, 2, 2]

    def test_star(self):
        g = star_graph(8)
        assert g.degree(0) == 8
        assert g.num_edges == 8


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(50, 200, rng=1)
        assert g.num_edges == 200
        assert g.num_vertices == 50

    def test_too_many_edges(self):
        with pytest.raises(GraphError):
            erdos_renyi(4, 10)

    def test_deterministic(self):
        assert erdos_renyi(30, 60, rng=5) == erdos_renyi(30, 60, rng=5)

    def test_zero_edges(self):
        assert erdos_renyi(10, 0, rng=1).num_edges == 0


class TestBarabasiAlbert:
    def test_size_and_connectivity(self):
        g = barabasi_albert(200, 4, rng=2)
        assert g.num_vertices == 200
        assert g.is_connected()

    def test_heavy_tail(self):
        g = barabasi_albert(500, 3, rng=3)
        degrees = np.sort(g.degrees())[::-1]
        # Hubs exist: the top degree dwarfs the median.
        assert degrees[0] > 5 * np.median(degrees)

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            barabasi_albert(5, 0)
        with pytest.raises(GraphError):
            barabasi_albert(3, 5)


class TestRandomRegular:
    def test_near_regular(self):
        g = random_regular(100, 6, rng=4)
        degrees = g.degrees()
        assert degrees.max() <= 6
        assert degrees.mean() > 5.0  # few collisions

    def test_parity(self):
        with pytest.raises(GraphError):
            random_regular(5, 3)


class TestStochasticBlock:
    def test_block_density(self):
        g = stochastic_block([30, 30], p_in=0.4, p_out=0.01, rng=5)
        inside = sum(
            1 for u, v in g.edges() if (u < 30) == (v < 30)
        )
        outside = g.num_edges - inside
        assert inside > 5 * max(outside, 1)

    def test_probability_bounds(self):
        with pytest.raises(GraphError):
            stochastic_block([5], 1.5, 0.0)


class TestStarHeavy:
    def test_structure(self):
        g = star_heavy(10, 50, bridge_edges=5, rng=6)
        assert g.num_vertices == 10 * 51
        degrees = g.degrees()
        # Hubs have degree >= leaves; leaves have degree 1.
        assert (degrees >= 50).sum() == 10
        assert (degrees == 1).sum() >= 10 * 50 - 20
        assert g.is_connected()

    def test_validation(self):
        with pytest.raises(GraphError):
            star_heavy(0, 5)


class TestHubAndSpokes:
    def test_single_extreme_hub(self):
        g = hub_and_spokes(400, 3, hub_fraction=0.5, rng=7)
        degrees = g.degrees()
        hub_degree = degrees[-1]
        assert hub_degree >= 0.45 * 399
        assert hub_degree > 3 * np.sort(degrees[:-1])[-1] / 2

    def test_fraction_bounds(self):
        with pytest.raises(GraphError):
            hub_and_spokes(10, 2, hub_fraction=0.0)


class TestLollipop:
    def test_theorem5_structure(self):
        g = lollipop(10, 4)
        assert g.num_vertices == 14
        # Clique part.
        assert g.num_edges == 45 + 4
        # Tail is a path: last vertex has degree 1.
        assert g.degree(13) == 1
        assert g.degree(12) == 2
        # Attachment vertex has clique degree + 1.
        assert g.degree(0) == 10
        assert g.is_connected()

    def test_no_tail(self):
        g = lollipop(5, 0)
        assert g == complete_graph(5)

    def test_validation(self):
        with pytest.raises(GraphError):
            lollipop(0, 3)
