"""Tests for the ``repro.lint`` static-analysis framework.

Per rule family: a positive fixture (the violation fires), a negative
fixture (idiomatic code stays clean), a suppressed fixture (a reasoned
``# repro: allow[...]`` silences it), and the suppression-without-reason
case (itself a finding).  Plus the meta-test the acceptance criteria
name: the live tree is lint-clean, and each rule's canonical violation
flips the exit signal on its own.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import PARSE_RULE_ID, SUPPRESSION_RULE_ID, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([str(tmp_path)], root=str(tmp_path))


def rule_ids(report):
    return sorted({finding.rule for finding in report.findings})


# ---------------------------------------------------------------------------
# REPRO-D001: ambient entropy
# ---------------------------------------------------------------------------


def test_d001_flags_global_np_random(tmp_path):
    report = lint_snippet(
        tmp_path,
        "colorcoding/kernel.py",
        """
        import numpy as np

        def draw(n):
            return np.random.rand(n)
        """,
    )
    assert rule_ids(report) == ["REPRO-D001"]
    assert "np.random.rand" in report.findings[0].message


def test_d001_flags_wall_clock_and_stdlib_random(tmp_path):
    report = lint_snippet(
        tmp_path,
        "table/build.py",
        """
        import random
        import time

        def stamp():
            return time.time()
        """,
    )
    assert rule_ids(report) == ["REPRO-D001"]
    assert len(report.findings) == 2  # the import and the call


def test_d001_flags_os_urandom_everywhere(tmp_path):
    report = lint_snippet(
        tmp_path,
        "util/ids.py",
        """
        import os

        def token():
            return os.urandom(8)
        """,
    )
    assert rule_ids(report) == ["REPRO-D001"]


def test_d001_allows_seeded_generators_and_perf_counter(tmp_path):
    report = lint_snippet(
        tmp_path,
        "sampling/draws.py",
        """
        import time

        import numpy as np

        def rng(seed):
            started = time.perf_counter()
            return np.random.default_rng(seed), started
        """,
    )
    assert report.clean


def test_d001_allows_wall_clock_outside_scoped_packages(tmp_path):
    report = lint_snippet(
        tmp_path,
        "engine/status.py",
        """
        import time

        def now():
            return time.time()
        """,
    )
    assert report.clean


def test_d001_allows_urandom_in_tracing_module(tmp_path):
    report = lint_snippet(
        tmp_path,
        "telemetry/tracing.py",
        """
        import os

        def trace_id():
            return os.urandom(16).hex()
        """,
    )
    assert report.clean


def test_d001_suppressed_with_reason(tmp_path):
    report = lint_snippet(
        tmp_path,
        "artifacts/manifest.py",
        """
        import time

        def manifest():
            return {
                # repro: allow[REPRO-D001] provenance stamp, never read back
                "created_at": time.time(),
            }
        """,
    )
    assert report.clean
    assert report.suppressions_used == 1


def test_suppression_without_reason_is_a_finding(tmp_path):
    report = lint_snippet(
        tmp_path,
        "artifacts/manifest.py",
        """
        import time

        def manifest():
            return time.time()  # repro: allow[REPRO-D001]
        """,
    )
    assert rule_ids(report) == [SUPPRESSION_RULE_ID]
    assert "no reason" in report.findings[0].message


# ---------------------------------------------------------------------------
# REPRO-D002: unordered iteration into arrays / seeds
# ---------------------------------------------------------------------------


def test_d002_flags_set_into_array_constructor(tmp_path):
    report = lint_snippet(
        tmp_path,
        "artifacts/cols.py",
        """
        import numpy as np

        def cols(a, b):
            return np.array({1, 2} | set(a))
        """,
    )
    assert "REPRO-D002" in rule_ids(report)


def test_d002_flags_keys_view_into_seed_derivation(tmp_path):
    report = lint_snippet(
        tmp_path,
        "sampling/seeds.py",
        """
        import numpy as np

        def streams(per_shard):
            return np.random.default_rng(per_shard.keys())
        """,
    )
    assert rule_ids(report) == ["REPRO-D002"]
    assert ".keys() view" in report.findings[0].message


def test_d002_flags_bare_iteration_over_set(tmp_path):
    report = lint_snippet(
        tmp_path,
        "colorcoding/levels.py",
        """
        def walk(levels):
            for level in {x for x in levels}:
                yield level
        """,
    )
    assert rule_ids(report) == ["REPRO-D002"]


def test_d002_allows_sorted_sets_and_dict_views(tmp_path):
    report = lint_snippet(
        tmp_path,
        "colorcoding/levels.py",
        """
        import numpy as np

        def walk(levels, table):
            out = np.array(sorted({x for x in levels}))
            for key, value in table.items():
                out = out + value
            for column in table.values():
                pass
            return out
        """,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# REPRO-L001: lock discipline
# ---------------------------------------------------------------------------

_LOCK_PREAMBLE = """
    import threading

    class Registry:
        _GUARDED_BY = {"_items": "_lock"}

        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}
"""

_UNLOCKED_SIZE = """
        def size(self):
            return len(self._items)
"""


def test_l001_flags_unlocked_access(tmp_path):
    report = lint_snippet(
        tmp_path,
        "serve/registry.py",
        _LOCK_PREAMBLE + _UNLOCKED_SIZE,
    )
    assert rule_ids(report) == ["REPRO-L001"]
    assert "_GUARDED_BY self._lock" in report.findings[0].message


def test_l001_flags_closure_escaping_the_lock(tmp_path):
    report = lint_snippet(
        tmp_path,
        "serve/registry.py",
        _LOCK_PREAMBLE
        + """
        def getter(self):
            with self._lock:
                return lambda key: self._items.get(key)
""",
    )
    assert rule_ids(report) == ["REPRO-L001"]


def test_l001_allows_locked_access_and_markers(tmp_path):
    report = lint_snippet(
        tmp_path,
        "serve/registry.py",
        _LOCK_PREAMBLE
        + """
        def size(self):
            with self._lock:
                return len(self._items)

        def _prune_locked(self):  # repro: holds-lock
            self._items.clear()
""",
    )
    assert report.clean


def test_l001_ignores_undeclared_classes_and_other_packages(tmp_path):
    source = """
        class Plain:
            def touch(self):
                return self._items
    """
    assert lint_snippet(tmp_path, "serve/plain.py", source).clean
    unlocked = _LOCK_PREAMBLE + _UNLOCKED_SIZE
    assert lint_snippet(tmp_path, "engine/registry.py", unlocked).clean


def test_l001_rejects_malformed_guarded_by(tmp_path):
    report = lint_snippet(
        tmp_path,
        "serve/registry.py",
        """
        class Registry:
            _GUARDED_BY = {"_items": some_name}
        """,
    )
    assert rule_ids(report) == ["REPRO-L001"]
    assert "string literals" in report.findings[0].message


# ---------------------------------------------------------------------------
# REPRO-T001: pool-transport safety
# ---------------------------------------------------------------------------


def test_t001_flags_lock_lambda_and_file_handle(tmp_path):
    report = lint_snippet(
        tmp_path,
        "engine/spec.py",
        """
        import threading
        from dataclasses import dataclass

        # repro: pool-transport
        @dataclass
        class Spec:
            convert = lambda value: value

        class Carrier:  # repro: pool-transport
            def __init__(self, path):
                self._lock = threading.Lock()
                self._sink = open(path, "a")
        """,
    )
    assert rule_ids(report) == ["REPRO-T001"]
    messages = " ".join(finding.message for finding in report.findings)
    assert "lambda" in messages
    assert "thread-synchronization" in messages
    assert "file handle" in messages
    assert len(report.findings) == 3


def test_t001_ignores_unmarked_classes(tmp_path):
    report = lint_snippet(
        tmp_path,
        "engine/other.py",
        """
        import threading

        class NotTransported:
            def __init__(self):
                self._lock = threading.Lock()
        """,
    )
    assert report.clean


def test_t001_clean_marked_dataclass(tmp_path):
    report = lint_snippet(
        tmp_path,
        "engine/spec.py",
        """
        from dataclasses import dataclass

        # repro: pool-transport
        @dataclass(frozen=True)
        class Spec:
            seed: int
            samples: int = 0
        """,
    )
    assert report.clean


# ---------------------------------------------------------------------------
# REPRO-X001 / REPRO-X002: dtype exactness in the kernels
# ---------------------------------------------------------------------------


def test_x001_flags_dtypeless_constructors_in_kernels(tmp_path):
    report = lint_snippet(
        tmp_path,
        "colorcoding/urn.py",
        """
        import numpy as np

        def lanes(n):
            return np.arange(n), np.empty(n)
        """,
    )
    assert rule_ids(report) == ["REPRO-X001"]
    assert len(report.findings) == 2


def test_x002_flags_platform_and_narrow_dtypes(tmp_path):
    report = lint_snippet(
        tmp_path,
        "colorcoding/incremental.py",
        """
        import numpy as np

        def bad(values):
            a = values.astype(int)
            b = np.zeros(3, dtype=np.float32)
            c = np.asarray(values, dtype="float32")
            return a, b, c
        """,
    )
    assert rule_ids(report) == ["REPRO-X002"]
    assert len(report.findings) == 3


def test_dtype_rules_allow_exact_widths_and_other_files(tmp_path):
    exact = """
        import numpy as np

        def good(values, n):
            a = np.arange(n, dtype=np.int64)
            b = values.astype(np.float64)
            c = np.zeros(n, dtype=np.uint32)
            return a, b, c
    """
    assert lint_snippet(tmp_path, "colorcoding/urn.py", exact).clean
    # The exactness contract binds the two kernel files, not all of
    # colorcoding/ — plan compilation may size arrays contextually.
    sloppy = """
        import numpy as np

        def sizes(n):
            return np.arange(n)
    """
    assert lint_snippet(tmp_path, "colorcoding/plans.py", sloppy).clean


# ---------------------------------------------------------------------------
# Framework behavior
# ---------------------------------------------------------------------------


def test_syntax_error_is_a_parse_finding_not_a_crash(tmp_path):
    report = lint_snippet(tmp_path, "colorcoding/broken.py", "def f(:\n")
    assert rule_ids(report) == [PARSE_RULE_ID]


def test_findings_carry_location_and_render_as_file_line(tmp_path):
    report = lint_snippet(
        tmp_path,
        "colorcoding/urn.py",
        """
        import numpy as np

        def lanes(n):
            return np.arange(n)
        """,
    )
    finding = report.findings[0]
    assert finding.path == "colorcoding/urn.py"
    assert finding.line == 5
    assert finding.render().startswith("colorcoding/urn.py:5:")


#: One canonical violation per rule id — the acceptance criterion that
#: introducing any single rule's violation flips the lint exit signal.
CANONICAL_VIOLATIONS = {
    "REPRO-D001": (
        "sampling/v.py",
        "import numpy as np\n\ndef f(n):\n    return np.random.rand(n)\n",
    ),
    "REPRO-D002": (
        "sampling/v.py",
        "import numpy as np\n\ndef f(a):\n    return np.array(set(a))\n",
    ),
    "REPRO-L001": (
        "serve/v.py",
        "class C:\n"
        "    _GUARDED_BY = {\"_m\": \"_lock\"}\n"
        "    def f(self):\n"
        "        return self._m\n",
    ),
    "REPRO-T001": (
        "engine/v.py",
        "# repro: pool-transport\n"
        "class C:\n"
        "    fn = lambda x: x\n",
    ),
    "REPRO-X001": (
        "colorcoding/urn.py",
        "import numpy as np\n\ndef f(n):\n    return np.arange(n)\n",
    ),
    "REPRO-X002": (
        "colorcoding/urn.py",
        "import numpy as np\n\ndef f(v):\n    return v.astype(int)\n",
    ),
    SUPPRESSION_RULE_ID: (
        "sampling/v.py",
        "import time\n\nt = time.time()  # repro: allow[REPRO-D001]\n",
    ),
    PARSE_RULE_ID: ("sampling/v.py", "def f(:\n"),
}


@pytest.mark.parametrize("rule_id", sorted(CANONICAL_VIOLATIONS))
def test_each_rule_fires_alone(tmp_path, rule_id):
    relpath, source = CANONICAL_VIOLATIONS[rule_id]
    report = lint_snippet(tmp_path, relpath, source)
    assert not report.clean
    assert rule_ids(report) == [rule_id]


def test_live_tree_is_lint_clean():
    report = lint_paths(
        [
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "tools"),
            str(REPO_ROOT / "benchmarks"),
        ],
        root=str(REPO_ROOT),
    )
    assert report.files_scanned > 50
    assert report.clean, "\n".join(f.render() for f in report.findings)
    # The deliberate exceptions (manifest timestamps) stay documented.
    assert report.suppressions_used >= 3


# ---------------------------------------------------------------------------
# Command-line entry points
# ---------------------------------------------------------------------------


def _run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_cli_exit_codes_and_json_output(tmp_path):
    bad = tmp_path / "colorcoding"
    bad.mkdir()
    (bad / "urn.py").write_text(
        "import numpy as np\n\ndef f(n):\n    return np.arange(n)\n"
    )
    result = _run_cli(["colorcoding", "--format=json"], cwd=tmp_path)
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["version"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["REPRO-X001"]
    assert payload["findings"][0]["line"] == 4

    (bad / "urn.py").write_text(
        "import numpy as np\n\ndef f(n):\n"
        "    return np.arange(n, dtype=np.int64)\n"
    )
    result = _run_cli(["colorcoding", "--format=json"], cwd=tmp_path)
    assert result.returncode == 0
    assert json.loads(result.stdout)["findings"] == []


def test_cli_rejects_missing_paths_and_lists_rules(tmp_path):
    result = _run_cli(["no/such/dir"], cwd=tmp_path)
    assert result.returncode == 2
    assert "no such path" in result.stderr

    result = _run_cli(["--list-rules"], cwd=tmp_path)
    assert result.returncode == 0
    for rule_id in CANONICAL_VIOLATIONS:
        assert rule_id in result.stdout


def test_run_lint_wrapper_scans_the_repo(tmp_path):
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "run_lint.py"),
         "--format=json"],
        cwd=tmp_path,  # anywhere: the wrapper anchors itself to the repo
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
    payload = json.loads(result.stdout)
    assert payload["findings"] == []
    assert payload["files_scanned"] > 50
