"""Tests for the treelet urn: uniformity, shape restriction, buffering."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.urn import TreeletUrn
from repro.exact.brute import brute_force_colorful_treelet_total
from repro.graph.generators import complete_graph, erdos_renyi, star_graph
from repro.treelets.encoding import canonical_free
from repro.util.instrument import Instrumentation


def make_urn(graph, k, seed, **kwargs):
    coloring = ColoringScheme.uniform(graph.num_vertices, k, rng=seed)
    table = build_table(graph, coloring)
    return TreeletUrn(graph, table, coloring, **kwargs)


class TestTotals:
    def test_total_matches_brute_force(self):
        graph = erdos_renyi(14, 30, rng=1)
        k = 4
        coloring = ColoringScheme.uniform(14, k, rng=2)
        table = build_table(graph, coloring)
        urn = TreeletUrn(graph, table, coloring)
        assert urn.total_treelets == pytest.approx(
            brute_force_colorful_treelet_total(graph, k, coloring)
        )

    def test_shape_totals_sum_to_total(self):
        urn = make_urn(erdos_renyi(20, 50, rng=3), 4, seed=4)
        total = sum(
            urn.shape_total(shape) for shape in urn.registry.free_shapes
        )
        assert total == pytest.approx(urn.total_treelets)

    def test_empty_urn_raises(self):
        # Two isolated vertices can never host a colorful 3-treelet.
        from repro.graph.graph import Graph

        graph = Graph.from_edges([(0, 1)], n=2)
        coloring = ColoringScheme.fixed([0, 1], k=3)
        table = build_table(graph, coloring)
        with pytest.raises(SamplingError, match="urn is empty"):
            TreeletUrn(graph, table, coloring)


class TestSampleValidity:
    def test_samples_are_colorful_connected_trees(self, rng):
        graph = erdos_renyi(25, 60, rng=5)
        k = 4
        coloring = ColoringScheme.uniform(25, k, rng=6)
        table = build_table(graph, coloring)
        urn = TreeletUrn(graph, table, coloring)
        for _ in range(300):
            vertices, treelet, mask = urn.sample(rng)
            assert len(vertices) == k
            assert len(set(vertices)) == k
            colors = {int(coloring.colors[v]) for v in vertices}
            assert len(colors) == k  # colorful
            # Vertices span a connected subgraph (a tree copy exists).
            sub = graph.subgraph(list(vertices))
            assert sub.is_connected()

    def test_root_is_color_zero_under_zero_rooting(self, rng):
        graph = erdos_renyi(25, 60, rng=7)
        coloring = ColoringScheme.uniform(25, 4, rng=8)
        table = build_table(graph, coloring, zero_rooting=True)
        urn = TreeletUrn(graph, table, coloring)
        for _ in range(100):
            vertices, _, _ = urn.sample(rng)
            assert int(coloring.colors[vertices[0]]) == 0


class TestUniformity:
    def test_uniform_over_copies_on_k4(self, rng):
        """On K_4 with distinct colors all 16 spanning trees are colorful;
        each of the 16 copies must appear equally often."""
        k = 4
        graph = complete_graph(k)
        coloring = ColoringScheme.fixed(list(range(k)), k=k)
        table = build_table(graph, coloring)
        urn = TreeletUrn(graph, table, coloring)
        assert urn.total_treelets == pytest.approx(16.0)

        draws = Counter()
        trials = 8000
        for _ in range(trials):
            vertices, treelet, _ = urn.sample(rng)
            # Identify the copy by its edge set.
            edges = _copy_edges(urn, vertices, treelet)
            draws[edges] += 1
        assert len(draws) == 16
        expected = trials / 16
        for count in draws.values():
            assert abs(count - expected) < 5 * np.sqrt(expected)


def _copy_edges(urn, vertices, treelet):
    """Reconstruct the sampled tree's edge set from the DFS vertex order."""
    from repro.treelets.encoding import tree_edges

    edges = frozenset(
        tuple(sorted((vertices[a], vertices[b])))
        for a, b in tree_edges(treelet)
    )
    return edges


class TestShapeSampling:
    def test_sample_shape_returns_right_shape(self, rng):
        graph = erdos_renyi(25, 60, rng=9)
        k = 4
        urn = make_urn(graph, k, seed=10)
        for shape in urn.registry.free_shapes:
            if urn.shape_total(shape) <= 0:
                continue
            for _ in range(50):
                vertices, treelet, _ = urn.sample_shape(shape, rng)
                assert canonical_free(treelet) == shape
                assert len(set(vertices)) == k

    def test_star_graph_has_no_path_shape(self, rng):
        """K_{1,4} contains no colorful 4-path, only 4-stars and below."""
        graph = star_graph(6)
        k = 4
        urn = make_urn(graph, k, seed=11)
        registry = urn.registry
        from repro.treelets.encoding import encode_parent_vector

        path_shape = canonical_free(encode_parent_vector([-1, 0, 1, 2]))
        star_shape = canonical_free(encode_parent_vector([-1, 0, 0, 0]))
        assert urn.shape_total(path_shape) == 0
        assert urn.shape_total(star_shape) > 0
        with pytest.raises(SamplingError):
            urn.sample_shape(path_shape, rng)

    def test_alias_rebuild_counted(self, rng):
        urn = make_urn(erdos_renyi(20, 50, rng=12), 4, seed=13)
        shape = max(
            urn.registry.free_shapes, key=lambda s: urn.shape_total(s)
        )
        urn.sample_shape(shape, rng)
        urn.sample_shape(shape, rng)
        assert urn.instrumentation["shape_alias_rebuilds"] == 1


class TestNeighborBuffering:
    def test_buffered_sampling_statistically_equivalent(self):
        """Hub graph: estimates with and without buffering must agree."""
        graph = star_graph(40)  # center 0 has degree 40
        k = 3
        coloring = ColoringScheme.uniform(41, k, rng=20)
        table = build_table(graph, coloring)
        plain = TreeletUrn(
            graph, table, coloring, buffer_threshold=10**9
        )
        buffered = TreeletUrn(
            graph, table, coloring, buffer_threshold=10, buffer_size=25
        )
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(2)
        counts_a = Counter(
            plain.sample(rng_a)[0] for _ in range(4000)
        )
        counts_b = Counter(
            buffered.sample(rng_b)[0] for _ in range(4000)
        )
        # Same support and similar frequencies.
        assert set(counts_a) == set(counts_b)
        for key in counts_a:
            assert abs(counts_a[key] - counts_b[key]) < 220

    def test_buffering_reduces_sweeps(self):
        graph = star_graph(60)
        k = 3
        coloring = ColoringScheme.uniform(61, k, rng=21)
        table = build_table(graph, coloring)
        inst_plain = Instrumentation()
        inst_buffered = Instrumentation()
        plain = TreeletUrn(
            graph, table, coloring,
            buffer_threshold=10**9, instrumentation=inst_plain,
        )
        buffered = TreeletUrn(
            graph, table, coloring,
            buffer_threshold=10, buffer_size=100,
            instrumentation=inst_buffered,
        )
        rng = np.random.default_rng(3)
        for _ in range(500):
            plain.sample(rng)
            buffered.sample(rng)
        assert (
            inst_buffered["neighbor_sweeps"]
            < inst_plain["neighbor_sweeps"] / 5
        )
