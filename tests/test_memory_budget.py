"""The build-up memory budget: tracked, enforced, fail-loud.

Two promises under test.  First, the :class:`MemoryBudget` tracker is a
hard ceiling — any allocation that would overshoot raises
:class:`~repro.errors.MemoryBudgetError` *before* happening, never
after.  Second, a budget the planner accepts is honoured: the build
completes bit-identically to the in-memory kernel with tracked peak at
or below the limit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.sharded import (
    MemoryBudget,
    build_table_sharded,
    plan_shards,
)
from repro.errors import BuildError, MemoryBudgetError, ReproError
from repro.graph.generators import erdos_renyi
from repro.motivo import MotivoConfig, MotivoCounter
from repro.table.layer_store import ShardedStore
from repro.treelets.registry import TreeletRegistry


class TestMemoryBudgetTracker:
    def test_allocate_release_and_peak(self):
        budget = MemoryBudget(1000)
        budget.allocate("a", 400)
        budget.allocate("b", 500)
        assert budget.used == 900
        assert budget.peak == 900
        budget.release(500)
        assert budget.used == 400
        assert budget.peak == 900
        budget.allocate("c", 100)
        assert budget.peak == 900

    def test_overshoot_raises_before_charging(self):
        budget = MemoryBudget(1000)
        budget.allocate("a", 800)
        with pytest.raises(MemoryBudgetError):
            budget.allocate("b", 300)
        assert budget.used == 800  # the failed allocation charged nothing

    def test_hold_scopes_the_charge(self):
        budget = MemoryBudget(1000)
        with budget.hold("scratch", 600):
            assert budget.used == 600
            with pytest.raises(MemoryBudgetError):
                budget.allocate("over", 600)
        assert budget.used == 0
        assert budget.peak == 600

    def test_unlimited_budget_only_tracks(self):
        budget = MemoryBudget(None)
        budget.allocate("huge", 10**15)
        assert budget.peak == 10**15

    def test_fold_peak_takes_the_maximum(self):
        budget = MemoryBudget(None)
        budget.allocate("local", 100)
        budget.fold_peak(5000)
        budget.fold_peak(300)
        assert budget.peak == 5000

    def test_typed_errors(self):
        with pytest.raises(MemoryBudgetError):
            MemoryBudget(0)
        with pytest.raises(MemoryBudgetError):
            MemoryBudget(-5)
        assert issubclass(MemoryBudgetError, BuildError)
        assert issubclass(MemoryBudgetError, ReproError)


class TestPlanShards:
    def test_tighter_budgets_need_more_shards(self):
        graph = erdos_renyi(300, 1200, rng=1)
        registry = TreeletRegistry(4)
        roomy = plan_shards(graph, registry, 1 << 30)
        tight = plan_shards(
            graph, registry, plan_shards_bytes_for(graph, registry) // 4
        )
        assert roomy == 1
        assert tight > roomy

    def test_impossible_budget_fails_loud(self):
        graph = erdos_renyi(60, 240, rng=2)
        registry = TreeletRegistry(5)
        with pytest.raises(MemoryBudgetError):
            plan_shards(graph, registry, 64)
        with pytest.raises(MemoryBudgetError):
            plan_shards(graph, registry, 0)


def plan_shards_bytes_for(graph, registry):
    """The planner's one-shard working-set model, for scaling budgets."""
    from repro.colorcoding.sharded import _plan_bytes

    return _plan_bytes(graph, registry, 1)


class TestBudgetedBuild:
    def test_tiny_budget_correct_and_within_limit(self, tmp_path):
        graph = erdos_renyi(120, 500, rng=4)
        coloring = ColoringScheme.uniform(120, 4, rng=5)
        registry = TreeletRegistry(4)
        # A budget a single shard cannot satisfy.
        limit = plan_shards_bytes_for(graph, registry) // 3
        num_shards = plan_shards(graph, registry, limit)
        assert num_shards > 1
        reference = build_table(graph, coloring, registry=registry)
        store = ShardedStore(
            num_shards, str(tmp_path / "shards"), owns_directory=True
        )
        budget = MemoryBudget(limit)
        table = build_table_sharded(
            graph, coloring, registry=registry, store=store,
            memory_budget=budget,
        )
        assert 0 < budget.peak <= limit
        for size in range(1, 5):
            assert table.has_layer(size) == reference.has_layer(size)
            if reference.has_layer(size):
                assert np.array_equal(
                    np.asarray(table.layer(size).dense_counts()),
                    np.asarray(reference.layer(size).dense_counts()),
                )
        store.close()

    def test_runtime_enforcement_with_explicit_shards(self, tmp_path):
        # One shard with a near-zero budget: planning is bypassed, so the
        # run-time tracker must catch the very first allocation.
        graph = erdos_renyi(80, 320, rng=6)
        coloring = ColoringScheme.uniform(80, 4, rng=7)
        store = ShardedStore(1, str(tmp_path / "s"), owns_directory=True)
        with pytest.raises(MemoryBudgetError):
            build_table_sharded(
                graph, coloring, store=store, memory_budget=256
            )
        store.close()


class TestFacadeBudget:
    def test_counter_reports_peak_and_stays_identical(self, tmp_path):
        graph = erdos_renyi(70, 280, rng=8)
        reference = MotivoCounter(graph, MotivoConfig(k=4, seed=13))
        reference.build()
        expected = reference.sample_naive(300)
        budgeted = MotivoCounter(
            graph,
            MotivoConfig(
                k=4, seed=13, memory_budget=1 << 26,
                shard_dir=str(tmp_path / "shards"),
            ),
        )
        budgeted.build()
        assert budgeted.build_budget is not None
        assert 0 < budgeted.build_budget.peak <= (1 << 26)
        got = budgeted.sample_naive(300)
        assert got.counts == expected.counts
        budgeted.close()
        reference.close()

    def test_impossible_budget_propagates(self):
        graph = erdos_renyi(50, 200, rng=9)
        counter = MotivoCounter(
            graph, MotivoConfig(k=4, seed=1, memory_budget=128)
        )
        with pytest.raises(MemoryBudgetError):
            counter.build()

    def test_sharded_config_validation(self, tmp_path):
        graph = erdos_renyi(30, 90, rng=10)
        with pytest.raises(BuildError):
            MotivoCounter(
                graph,
                MotivoConfig(k=4, memory_budget=1 << 26, kernel="legacy"),
            ).build()
        with pytest.raises(BuildError):
            MotivoCounter(
                graph,
                MotivoConfig(
                    k=4, num_shards=2, spill_dir=str(tmp_path / "spill")
                ),
            ).build()
        with pytest.raises(BuildError):
            MotivoCounter(graph, MotivoConfig(k=4, num_shards=0)).build()
