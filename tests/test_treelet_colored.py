"""Tests for colored treelet keys."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ColorError
from repro.treelets.colored import (
    ColoredTreelet,
    color_mask_of,
    colored_key,
    colors_of_mask,
    split_colored_key,
    validate_colored,
)
from repro.treelets.encoding import SINGLETON, encode_parent_vector, merge


class TestColorMasks:
    def test_pack_unpack(self):
        mask = color_mask_of([0, 2, 5])
        assert mask == 0b100101
        assert colors_of_mask(mask) == [0, 2, 5]

    def test_duplicate_color_rejected(self):
        with pytest.raises(ColorError):
            color_mask_of([1, 1])

    def test_negative_color_rejected(self):
        with pytest.raises(ColorError):
            color_mask_of([-1])

    def test_negative_mask_rejected(self):
        with pytest.raises(ColorError):
            colors_of_mask(-2)

    @given(st.sets(st.integers(min_value=0, max_value=15), max_size=8))
    def test_round_trip(self, colors):
        assert colors_of_mask(color_mask_of(sorted(colors))) == sorted(colors)


class TestValidation:
    def test_colorful_requires_matching_sizes(self):
        edge = merge(SINGLETON, SINGLETON)
        validate_colored(edge, 0b11, k=4)
        with pytest.raises(ColorError):
            validate_colored(edge, 0b111, k=4)

    def test_mask_within_universe(self):
        with pytest.raises(ColorError):
            validate_colored(SINGLETON, 0b10000, k=4)


class TestPackedKey:
    def test_pack_layout(self):
        edge = merge(SINGLETON, SINGLETON)
        key = colored_key(edge, 0b0101, k=4)
        assert key == (edge << 4) | 0b0101

    def test_split_inverse(self):
        t = encode_parent_vector([-1, 0, 0, 1])
        key = colored_key(t, 0b1011, k=4)
        assert split_colored_key(key, 4) == (t, 0b1011)

    def test_mask_overflow_rejected(self):
        with pytest.raises(ColorError):
            colored_key(SINGLETON, 0b10000, k=4)

    def test_key_order_matches_tuple_order(self):
        edge = merge(SINGLETON, SINGLETON)
        keys = [
            colored_key(t, m, 4)
            for t in (SINGLETON, edge)
            for m in (0b0001, 0b0010, 0b1000)
        ]
        tuples = [
            (t, m)
            for t in (SINGLETON, edge)
            for m in (0b0001, 0b0010, 0b1000)
        ]
        assert [k for _, k in sorted(zip(tuples, keys))] == sorted(keys)


class TestColoredTreelet:
    def test_frozen_and_hashable(self):
        a = ColoredTreelet(SINGLETON, 0b1)
        b = ColoredTreelet(SINGLETON, 0b1)
        assert a == b
        assert hash(a) == hash(b)
        with pytest.raises(Exception):
            a.treelet = 5  # type: ignore[misc]

    def test_size_and_colors(self):
        edge = merge(SINGLETON, SINGLETON)
        colored = ColoredTreelet(edge, 0b0110)
        assert colored.size == 2
        assert colored.colors() == [1, 2]

    def test_ordering(self):
        edge = merge(SINGLETON, SINGLETON)
        assert ColoredTreelet(SINGLETON, 0b10) < ColoredTreelet(edge, 0b11)
        assert ColoredTreelet(edge, 0b01) < ColoredTreelet(edge, 0b10)
