"""Tests for the random-walk and path-sampling baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.path_sampling import (
    estimate_triangle_count,
    exact_triangle_count,
    wedge_count,
    wedge_sample_triangle_fraction,
)
from repro.baselines.random_walk import random_walk_frequencies
from repro.errors import SamplingError
from repro.exact.esu import exact_counts
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)


class TestWedgeAndTriangleCounts:
    def test_wedges_on_star(self):
        from math import comb

        assert wedge_count(star_graph(7)) == comb(7, 2)

    def test_wedges_on_cycle(self):
        assert wedge_count(cycle_graph(8)) == 8

    def test_triangles_complete(self):
        from math import comb

        assert exact_triangle_count(complete_graph(7)) == comb(7, 3)

    def test_triangles_bipartite_free(self):
        assert exact_triangle_count(star_graph(6)) == 0
        assert exact_triangle_count(cycle_graph(6)) == 0

    def test_triangles_match_esu(self):
        from repro.graphlets.enumerate import clique_graphlet

        g = erdos_renyi(30, 120, rng=3)
        counts = exact_counts(g, 3)
        assert exact_triangle_count(g) == counts.get(clique_graphlet(3), 0)


class TestWedgeSampling:
    def test_clustering_of_complete_graph(self, rng):
        fraction = wedge_sample_triangle_fraction(complete_graph(8), 2000, rng)
        assert fraction == 1.0

    def test_clustering_of_star(self, rng):
        fraction = wedge_sample_triangle_fraction(star_graph(8), 2000, rng)
        assert fraction == 0.0

    def test_triangle_estimate_converges(self, rng):
        g = erdos_renyi(40, 250, rng=4)
        exact = exact_triangle_count(g)
        estimated, wedges = estimate_triangle_count(g, 50_000, rng)
        assert wedges == wedge_count(g)
        assert estimated == pytest.approx(exact, rel=0.15)

    def test_needs_wedges(self, rng):
        with pytest.raises(SamplingError):
            wedge_sample_triangle_fraction(path_graph(2), 10, rng)

    def test_needs_samples(self, rng):
        with pytest.raises(SamplingError):
            wedge_sample_triangle_fraction(complete_graph(4), 0, rng)


class TestRandomWalk:
    def test_frequencies_on_small_graph(self):
        """With many steps, visit frequencies approach the exact ones."""
        g = erdos_renyi(18, 45, rng=5)
        k = 3
        truth = exact_counts(g, k)
        total = sum(truth.values())
        frequencies = random_walk_frequencies(
            g, k, steps=40_000, burn_in=2000, rng=6
        )
        for bits, count in truth.items():
            assert frequencies.get(bits, 0.0) == pytest.approx(
                count / total, abs=0.08
            )

    def test_frequencies_sum_to_one(self):
        g = erdos_renyi(15, 40, rng=7)
        frequencies = random_walk_frequencies(g, 3, steps=500, rng=8)
        assert sum(frequencies.values()) == pytest.approx(1.0)

    def test_explicit_start(self):
        g = cycle_graph(8)
        frequencies = random_walk_frequencies(
            g, 3, steps=200, rng=9, start=(0, 1, 2)
        )
        assert frequencies  # the walk ran

    def test_bad_start_rejected(self):
        g = cycle_graph(8)
        with pytest.raises(SamplingError):
            random_walk_frequencies(g, 3, steps=10, rng=10, start=(0, 2, 4))

    def test_needs_steps(self):
        with pytest.raises(SamplingError):
            random_walk_frequencies(cycle_graph(5), 3, steps=0)

    def test_mixing_failure_regime(self):
        """On the lollipop graph a short walk stays inside the clique —
        exactly the pathology the paper cites for walk-based methods."""
        from repro.graph.generators import lollipop
        from repro.graphlets.enumerate import path_graphlet

        g = lollipop(20, 6)
        k = 4
        truth = exact_counts(g, k)
        total = sum(truth.values())
        true_path_fraction = truth[path_graphlet(4)] / total
        assert true_path_fraction > 0.0
        frequencies = random_walk_frequencies(g, k, steps=300, rng=11)
        # The walk has not discovered the tail's paths at their true rate:
        # it underestimates (usually reporting 0).
        assert frequencies.get(path_graphlet(4), 0.0) < true_path_fraction
