"""Layout-equivalence matrix: dense vs succinct, everywhere tables live.

The `LayerView` contract promises that the dense matrices and the
succinct CSR records answer every table operation **bit-identically** —
across every `LayerStore` backend and across artifact reload in either
codec.  These tests are that promise, enforced with exact equality
(never ``approx``): records, `occ`, key sampling, and both estimators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TableError
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.urn import TreeletUrn
from repro.graph.generators import erdos_renyi
from repro.motivo import MotivoConfig, MotivoCounter
from repro.sampling.ags import ags_estimate
from repro.sampling.naive import naive_estimate
from repro.sampling.occurrences import GraphletClassifier
from repro.table.count_table import DenseLayer, SuccinctLayer
from repro.table.flush import SpillStore
from repro.table.layer_store import (
    InMemoryStore,
    ShardedStore,
    SpillLayerStore,
)
from repro.treelets.registry import TreeletRegistry

K = 4
N = 80
STORES = ("memory", "spill", "sharded")


@pytest.fixture(scope="module")
def workload():
    graph = erdos_renyi(N, 320, rng=5)
    coloring = ColoringScheme.uniform(N, K, rng=6)
    registry = TreeletRegistry(K)
    return graph, coloring, registry


@pytest.fixture(scope="module")
def reference(workload):
    """The dense in-memory build every cell of the matrix compares to."""
    graph, coloring, registry = workload
    return build_table(graph, coloring, registry=registry)


def _make_store(kind: str, tmp_path):
    if kind == "memory":
        return InMemoryStore()
    if kind == "spill":
        return SpillLayerStore(SpillStore(str(tmp_path / "spill")))
    return ShardedStore(3, directory=str(tmp_path / "shards"))


def _assert_tables_equivalent(reference, table, graph, coloring, registry):
    """Exact-equality sweep over the paper operations and both samplers."""
    assert table.total_pairs() == reference.total_pairs()
    rng = np.random.default_rng(99)
    verts = rng.integers(0, N, size=8)
    for h in range(1, K + 1):
        ref_layer = reference.layer(h)
        layer = table.layer(h)
        assert layer.keys == ref_layer.keys
        assert np.array_equal(layer.totals(), ref_layer.totals())
        for treelet in {t for t, _ in ref_layer.keys}:
            assert layer.treelet_rows(treelet) == ref_layer.treelet_rows(
                treelet
            )
        for v in verts.tolist():
            assert table.record(v, h) == reference.record(v, h)
            assert table.cumulative_record(v, h) == reference.cumulative_record(v, h)
            for treelet, mask in ref_layer.keys:
                assert table.occ(treelet, mask, v) == reference.occ(
                    treelet, mask, v
                )

    # Key sampling: scalar and batched, same uniforms, same rows.
    roots = np.flatnonzero(reference.root_weights() > 0)
    us = rng.random(roots.size)
    assert np.array_equal(
        table.sample_key_rows_batch(roots, us),
        reference.sample_key_rows_batch(roots, us),
    )
    for v, u in zip(roots.tolist()[:12], us.tolist()[:12]):
        assert table.sample_key_at(v, u) == reference.sample_key_at(v, u)

    # Full estimators, batched and loop draws.
    ref_urn = TreeletUrn(graph, reference, coloring, registry=registry)
    urn = TreeletUrn(graph, table, coloring, registry=registry)
    for a, b in zip(
        ref_urn.sample_batch(200, np.random.default_rng(3)),
        urn.sample_batch(200, np.random.default_rng(3)),
    ):
        assert np.array_equal(a, b)
    classifier = GraphletClassifier(graph, K)
    naive_ref = naive_estimate(
        ref_urn, classifier, 300, np.random.default_rng(17)
    )
    naive_new = naive_estimate(
        urn, classifier, 300, np.random.default_rng(17)
    )
    assert naive_new.counts == naive_ref.counts
    assert naive_new.hits == naive_ref.hits
    ags_ref = ags_estimate(
        ref_urn, classifier, 300, cover_threshold=40,
        rng=np.random.default_rng(23),
    )
    ags_new = ags_estimate(
        urn, classifier, 300, cover_threshold=40,
        rng=np.random.default_rng(23),
    )
    assert ags_new.estimates.counts == ags_ref.estimates.counts
    assert ags_new.estimates.hits == ags_ref.estimates.hits


class TestLayoutMatrix:
    @pytest.mark.parametrize("kind", STORES)
    @pytest.mark.parametrize("layout", ["dense", "succinct"])
    def test_store_backend_cell(
        self, tmp_path, workload, reference, kind, layout
    ):
        graph, coloring, registry = workload
        table = build_table(
            graph, coloring, registry=registry,
            store=_make_store(kind, tmp_path), layout=layout,
        )
        assert table.layout() == layout
        if layout == "succinct":
            assert all(
                isinstance(table.layer(h), SuccinctLayer)
                for h in range(1, K + 1)
            )
        _assert_tables_equivalent(
            reference, table, graph, coloring, registry
        )

    @pytest.mark.parametrize("codec", ["dense", "succinct"])
    @pytest.mark.parametrize("layout", ["dense", "succinct"])
    def test_artifact_reload_cell(
        self, tmp_path, workload, reference, codec, layout
    ):
        from repro.artifacts import open_table, save_table

        graph, coloring, registry = workload
        save_table(
            str(tmp_path / "art"), reference, coloring, graph, codec=codec
        )
        artifact = open_table(
            str(tmp_path / "art"), graph, layout=layout
        )
        assert artifact.table.layout() == layout
        _assert_tables_equivalent(
            reference, artifact.table, graph, coloring, registry
        )

    def test_native_open_is_zero_copy_csr(self, tmp_path, workload, reference):
        """A succinct-codec artifact opens as CSR records by default."""
        from repro.artifacts import open_table, save_table

        graph, coloring, _registry = workload
        save_table(
            str(tmp_path / "art"), reference, coloring, graph,
            codec="succinct",
        )
        artifact = open_table(str(tmp_path / "art"), graph)
        assert all(
            isinstance(artifact.table.layer(h), SuccinctLayer)
            for h in range(1, K + 1)
        )
        # And a dense-codec artifact stays memory-mapped dense.
        save_table(
            str(tmp_path / "art2"), reference, coloring, graph,
            codec="dense",
        )
        dense = open_table(str(tmp_path / "art2"), graph)
        assert isinstance(dense.table.layer(K), DenseLayer)
        assert isinstance(dense.table.layer(K).counts, np.memmap)

    def test_succinct_blobs_layout_independent(
        self, tmp_path, workload, reference
    ):
        """Dense and sealed tables serialize to byte-identical artifacts."""
        from repro.artifacts import save_table
        from repro.artifacts.table_artifact import file_digest

        graph, coloring, registry = workload
        sealed = build_table(
            graph, coloring, registry=registry, layout="succinct"
        )
        a = save_table(
            str(tmp_path / "a"), reference, coloring, graph, codec="succinct"
        )
        b = save_table(
            str(tmp_path / "b"), sealed, coloring, graph, codec="succinct"
        )
        for la, lb in zip(a.manifest["layers"], b.manifest["layers"]):
            assert la["counts"]["digest"] == lb["counts"]["digest"]
            assert la["keys"]["digest"] == lb["keys"]["digest"]


class TestLegacyKernelSeals:
    def test_legacy_succinct_matches_reference(self, workload, reference):
        graph, coloring, registry = workload
        table = build_table(
            graph, coloring, registry=registry,
            kernel="legacy", layout="succinct",
        )
        assert table.layout() == "succinct"
        _assert_tables_equivalent(
            reference, table, graph, coloring, registry
        )


class TestFacadeThreading:
    def test_counter_layouts_bit_identical(self, workload):
        graph, _coloring, _registry = workload
        results = {}
        for layout in ("dense", "succinct"):
            counter = MotivoCounter(
                graph, MotivoConfig(k=K, seed=41, table_layout=layout)
            )
            counter.build()
            assert counter.urn.table.layout() == layout
            results[layout] = counter.sample_naive(400)
        assert results["dense"].counts == results["succinct"].counts
        assert results["dense"].hits == results["succinct"].hits

    def test_from_artifact_layout_override(self, tmp_path, workload):
        graph, _coloring, _registry = workload
        counter = MotivoCounter(
            graph, MotivoConfig(k=K, seed=41, table_layout="succinct")
        )
        counter.build()
        counter.save_artifact(str(tmp_path / "art"), codec="succinct")
        expected = counter.sample_naive(300)

        # Stored layout wins by default; explicit table_layout overrides.
        warm = MotivoCounter.from_artifact(graph, str(tmp_path / "art"))
        assert warm.config.table_layout == "succinct"
        assert warm.urn.table.layout() == "succinct"
        assert warm.sample_naive(300).counts == expected.counts

        forced = MotivoCounter.from_artifact(
            graph, str(tmp_path / "art"), table_layout="dense"
        )
        assert forced.urn.table.layout() == "dense"
        assert forced.sample_naive(300).counts == expected.counts

    def test_ensemble_artifact_layout_override(self, tmp_path, workload):
        from repro.engine import PipelineEngine

        graph, _coloring, _registry = workload
        engine = PipelineEngine(
            graph, MotivoConfig(k=K, seed=13), colorings=2
        )
        engine.build_artifact(str(tmp_path / "bundle"))
        baseline = engine.run_naive(200, artifact=str(tmp_path / "bundle"))
        succinct = engine.run_naive(
            200, artifact=str(tmp_path / "bundle"), table_layout="succinct"
        )
        assert succinct.estimates.counts == baseline.estimates.counts
        assert succinct.estimates.hits == baseline.estimates.hits


class TestSealSemantics:
    def test_seal_is_idempotent_and_reversible(self, reference, workload):
        graph, coloring, registry = workload
        table = build_table(graph, coloring, registry=registry)
        dense_bytes = table.actual_bytes()
        table.seal("succinct")
        sealed_bytes = table.actual_bytes()
        assert sealed_bytes < dense_bytes
        table.seal("succinct")  # idempotent
        assert table.actual_bytes() == sealed_bytes
        table.seal("dense")
        assert table.layout() == "dense"
        for h in range(1, K + 1):
            assert np.array_equal(
                table.layer(h).counts, reference.layer(h).counts
            )

    def test_memory_accounting_tracks_lazy_caches(self, workload):
        graph, coloring, registry = workload
        table = build_table(
            graph, coloring, registry=registry, layout="succinct"
        )
        before = table.actual_bytes()
        # Sampling builds the cumulative records and the totals cache.
        roots = np.flatnonzero(table.root_weights() > 0)[:8]
        table.sample_key_rows_batch(roots, np.full(roots.size, 0.5))
        after = table.actual_bytes()
        assert after > before

    def test_unknown_layout_rejected(self, workload):
        graph, coloring, registry = workload
        table = build_table(graph, coloring, registry=registry)
        with pytest.raises(TableError):
            table.seal("sparse")
        from repro.errors import BuildError

        with pytest.raises(BuildError):
            build_table(graph, coloring, registry=registry, layout="csc")
