"""End-to-end integration tests across the full pipeline.

These exercise the complete paper workflow on graphs where exact ground
truth is computable, verifying the statistical contract rather than any
single module: build → urn → sample → estimate ≈ exact counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact.esu import exact_counts
from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi, lollipop
from repro.graphlets.enumerate import path_graphlet
from repro.motivo import MotivoConfig, MotivoCounter
from repro.sampling.estimates import accuracy_census, count_errors, l1_error


class TestEndToEndAccuracy:
    @pytest.fixture(scope="class")
    def world(self):
        graph = erdos_renyi(120, 420, rng=70)
        k = 4
        truth = exact_counts(graph, k)
        return graph, k, truth

    def test_l1_error_small(self, world):
        """The §5.2 claim, scaled: ℓ1 frequency error below 5%."""
        graph, k, truth = world
        counter = MotivoCounter(graph, MotivoConfig(k=k, seed=71))
        averaged = counter.averaged_naive(runs=6, samples_per_run=20_000)
        assert l1_error(averaged, truth) < 0.05

    def test_count_errors_centered(self, world):
        graph, k, truth = world
        counter = MotivoCounter(graph, MotivoConfig(k=k, seed=72))
        averaged = counter.averaged_naive(runs=6, samples_per_run=20_000)
        errors = count_errors(averaged, truth)
        bulk = [e for bits, e in errors.items() if truth[bits] > 50]
        assert all(abs(e) < 0.5 for e in bulk)

    def test_accuracy_census_majority(self, world):
        graph, k, truth = world
        counter = MotivoCounter(graph, MotivoConfig(k=k, seed=73))
        averaged = counter.averaged_naive(runs=6, samples_per_run=20_000)
        _count, fraction = accuracy_census(averaged, truth, tolerance=0.5)
        assert fraction > 0.6

    def test_ags_and_naive_agree_on_bulk(self, world):
        graph, k, _ = world
        counter = MotivoCounter(graph, MotivoConfig(k=k, seed=74))
        counter.build()
        naive = counter.sample_naive(20_000)
        ags = counter.sample_ags(20_000, cover_threshold=300).estimates
        for bits, value in naive.top(3):
            assert ags.counts.get(bits, 0.0) == pytest.approx(value, rel=0.3)


class TestLollipopTheorem5:
    """Theorem 5's lower bound, reproduced: on the lollipop graph the
    clique floods the path-treelet urn with non-induced path copies, so
    *any* sample(T)-based algorithm — AGS included — needs Ω(1/p_H)
    samples to witness one induced k-path."""

    def test_induced_paths_stay_hidden(self):
        graph = lollipop(25, 6)
        k = 4
        truth = exact_counts(graph, k)
        total = sum(truth.values())
        path_bits = path_graphlet(k)
        path_fraction = truth[path_bits] / total
        assert 0 < path_fraction < 0.02  # rare, as constructed

        counter = MotivoCounter(graph, MotivoConfig(k=k, seed=75))
        counter.build()
        urn = counter.urn

        # Quantify the theorem: the probability that a path-shape sample
        # spans an induced path is tiny (the clique owns the path urn).
        from repro.exact.esu import exact_colorful_counts
        from repro.graphlets.spanning import spanning_tree_shape_counts
        from repro.treelets.encoding import encode_parent_vector

        path_shape = canonical_free_path()
        colorful = exact_colorful_counts(graph, k, counter.coloring)
        sigma = spanning_tree_shape_counts(path_bits, k)
        hit_probability = (
            colorful.get(path_bits, 0)
            * sigma.get(path_shape, 0)
            / urn.shape_total(path_shape)
        )
        assert hit_probability < 2e-3

        # A modest budget therefore sees (almost) no induced paths even
        # under AGS — the additive barrier Theorem 5 formalizes.
        result = counter.sample_ags(3000, cover_threshold=200)
        assert result.estimates.hits.get(path_bits, 0) <= 20


def canonical_free_path():
    from repro.treelets.encoding import canonical_free, encode_parent_vector

    return canonical_free(encode_parent_vector([-1, 0, 1, 2]))


class TestDatasetSmoke:
    @pytest.mark.parametrize("name", ["facebook", "amazon", "yelp"])
    def test_pipeline_runs_on_surrogates(self, name):
        graph = load_dataset(name)
        counter = MotivoCounter(graph, MotivoConfig(k=5, seed=76))
        counter.build()
        estimates = counter.sample_naive(1500)
        assert estimates.total > 0
        assert estimates.distinct_graphlets() >= 1
        frequencies = estimates.frequencies()
        assert sum(frequencies.values()) == pytest.approx(1.0)

    def test_deep_k_on_facebook(self):
        """k = 7: 48 rooted treelet shapes, 11 free shapes — the pipeline
        must stay consistent at depth."""
        graph = load_dataset("facebook")
        counter = MotivoCounter(graph, MotivoConfig(k=7, seed=77))
        counter.build()
        estimates = counter.sample_naive(1000)
        assert estimates.distinct_graphlets() > 50


class TestConcentration:
    def test_variance_shrinks_with_averaging(self):
        """Theorem 3's practical face: multi-coloring averages have lower
        dispersion than single-coloring estimates."""
        graph = erdos_renyi(60, 180, rng=78)
        k = 4
        truth = exact_counts(graph, k)
        top_bits = max(truth, key=truth.get)

        singles = []
        for seed in range(8):
            counter = MotivoCounter(graph, MotivoConfig(k=k, seed=200 + seed))
            counter.build()
            singles.append(
                counter.sample_naive(4000).counts.get(top_bits, 0.0)
            )
        averaged = []
        for seed in range(4):
            counter = MotivoCounter(graph, MotivoConfig(k=k, seed=300 + seed))
            averaged.append(
                counter.averaged_naive(runs=8, samples_per_run=4000)
                .counts.get(top_bits, 0.0)
            )
        true_value = truth[top_bits]
        single_spread = np.std([s / true_value for s in singles])
        averaged_spread = np.std([a / true_value for a in averaged])
        assert averaged_spread < single_spread + 0.05
