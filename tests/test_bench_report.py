"""Regression tests for ``tools/bench_report.py``.

The PR 10 bugfix sweep: a malformed ``BENCH_*.json`` must fail the run
with a clear message naming the file (exit 1), never a raw traceback
and never a silent skip that drops the row from the table.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "bench_report", REPO_ROOT / "tools" / "bench_report.py"
)
bench_report = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_report)


@pytest.fixture
def root(tmp_path):
    return tmp_path


def _write(root, name, payload):
    (root / name).write_text(
        payload if isinstance(payload, str) else json.dumps(payload)
    )


def test_generic_file_renders_and_check_passes(root, capsys):
    _write(root, "BENCH_future.json", {"speedup": 2.0, "bit_identical": True})
    assert bench_report.main(["--root", str(root)]) == 0
    text = (root / "BENCHMARKS.md").read_text()
    assert "BENCH_future.json" in text
    assert bench_report.main(["--root", str(root), "--check"]) == 0


def test_stale_document_fails_check(root, capsys):
    _write(root, "BENCH_future.json", {"speedup": 2.0})
    assert bench_report.main(["--root", str(root)]) == 0
    _write(root, "BENCH_future.json", {"speedup": 3.0, "runs": 5})
    assert bench_report.main(["--root", str(root), "--check"]) == 1
    assert "stale" in capsys.readouterr().err


def test_invalid_json_exits_nonzero_with_message(root, capsys):
    _write(root, "BENCH_broken.json", "{not json")
    assert bench_report.main(["--root", str(root)]) == 1
    err = capsys.readouterr().err
    assert "BENCH_broken.json" in err
    assert "not valid JSON" in err
    assert not (root / "BENCHMARKS.md").exists()


def test_non_object_top_level_exits_nonzero(root, capsys):
    _write(root, "BENCH_list.json", [1, 2, 3])
    assert bench_report.main(["--root", str(root)]) == 1
    err = capsys.readouterr().err
    assert "BENCH_list.json" in err
    assert "JSON object" in err


def test_extractor_mismatch_exits_nonzero_not_traceback(root, capsys):
    # A known trajectory name whose payload lacks the shape its bespoke
    # extractor needs: batch_curve entries without batch_size used to
    # escape as a raw KeyError traceback.
    _write(
        root,
        "BENCH_INCREMENTAL.json",
        {"batch_curve": [{"speedup": 0.5}], "bit_identical": True},
    )
    assert bench_report.main(["--root", str(root), "--check"]) == 1
    err = capsys.readouterr().err
    assert "BENCH_INCREMENTAL.json" in err
    assert "extractor" in err


def test_malformed_check_fails_before_staleness(root, capsys):
    _write(root, "BENCH_broken.json", "[1,")
    assert bench_report.main(["--root", str(root), "--check"]) == 1
    assert "BENCH_broken.json" in capsys.readouterr().err


def test_repo_tracked_files_still_render():
    text = bench_report.render()
    assert text.startswith("# Benchmark trajectory")
    assert "BENCH_buildup.json" in text
