"""Tests for exhaustive graphlet enumeration."""

from __future__ import annotations

import pytest

from repro.errors import GraphletError
from repro.graphlets.canonical import canonical_form
from repro.graphlets.encoding import graphlet_edge_count, is_connected_graphlet
from repro.graphlets.enumerate import (
    clique_graphlet,
    cycle_graphlet,
    enumerate_graphlets,
    graphlet_census,
    graphlet_index,
    path_graphlet,
    star_graphlet,
)


class TestCensus:
    @pytest.mark.parametrize(
        "k,expected", [(1, 1), (2, 1), (3, 2), (4, 6), (5, 21), (6, 112)]
    )
    def test_matches_a001349(self, k, expected):
        assert len(enumerate_graphlets(k)) == expected
        assert graphlet_census(k) == expected

    def test_k7_slow(self):
        assert graphlet_census(7) == 853

    def test_k8_falls_back_to_table(self):
        # No enumeration needed; the paper's "over 10k" figure.
        assert graphlet_census(8) == 11117

    def test_bad_size(self):
        with pytest.raises(GraphletError):
            enumerate_graphlets(0)


class TestProperties:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_all_connected(self, k):
        for bits in enumerate_graphlets(k):
            assert is_connected_graphlet(bits, k)

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_all_canonical(self, k):
        for bits in enumerate_graphlets(k):
            assert canonical_form(bits, k) == bits

    @pytest.mark.parametrize("k", [4, 5, 6])
    def test_sorted_and_distinct(self, k):
        graphlets = enumerate_graphlets(k)
        assert list(graphlets) == sorted(set(graphlets))

    @pytest.mark.parametrize("k", [4, 5])
    def test_edge_count_range(self, k):
        counts = {graphlet_edge_count(bits) for bits in enumerate_graphlets(k)}
        assert min(counts) == k - 1  # trees
        assert max(counts) == k * (k - 1) // 2  # the clique


class TestNamedGraphlets:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_specials_are_enumerated(self, k):
        graphlets = set(enumerate_graphlets(k))
        assert clique_graphlet(k) in graphlets
        assert star_graphlet(k) in graphlets
        assert path_graphlet(k) in graphlets
        assert cycle_graphlet(k) in graphlets

    def test_star_and_path_distinct(self):
        for k in (4, 5, 6):
            assert star_graphlet(k) != path_graphlet(k)

    def test_k3_star_is_path(self):
        assert star_graphlet(3) == path_graphlet(3)

    def test_index(self):
        index = graphlet_index(5)
        assert len(index) == 21
        assert sorted(index.values()) == list(range(21))
