"""Shared test/bench support helpers (importable as ``support.*``)."""
