"""Deterministic SNAP-style power-law graph synthesizer.

The scale tests and ``benchmarks/bench_scale.py`` need multi-million-edge
inputs with the degree skew of the paper's Table 1 graphs (a heavy-tailed
degree sequence with a few enormous hubs), but the repo cannot ship such
files.  This module synthesizes them on demand: a Chung-Lu style sampler
over an explicit power-law weight sequence, fully deterministic given a
seed, emitting each undirected edge exactly once — the contract both
:func:`repro.graph.io.load_edge_list` and the external streaming loader
(:mod:`repro.graph.stream`) accept and agree on bit for bit.

Everything is vectorized NumPy; 2M edges synthesize in a couple of
seconds.  :func:`write_snap_edge_list` streams the text file in chunks,
with the ``# repro graph n=... m=...`` header so isolated vertices
survive the round trip.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple, Union

import numpy as np

PathLike = Union[str, "os.PathLike[str]"]

__all__ = [
    "powerlaw_weights",
    "powerlaw_edges",
    "write_snap_edge_list",
    "synthesize_snap_file",
]


def powerlaw_weights(n: int, exponent: float = 2.2) -> np.ndarray:
    """Chung-Lu weight sequence with a power-law tail.

    ``weights[i] ∝ (i + 1)^(-1 / (exponent - 1))`` yields an expected
    degree sequence whose tail follows ``P(deg > d) ~ d^(1 - exponent)``
    — vertex 0 is the dominant hub, like BerkStan's.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if exponent <= 1.0:
        raise ValueError("exponent must exceed 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return ranks ** (-1.0 / (exponent - 1.0))


def powerlaw_edges(
    n: int,
    m: int,
    exponent: float = 2.2,
    seed: int = 0,
) -> np.ndarray:
    """``m`` distinct power-law-weighted edges, deterministic in ``seed``.

    Samples endpoint pairs proportionally to the Chung-Lu weights,
    drops self-loops, deduplicates, and repeats until ``m`` distinct
    ``u < v`` pairs exist (raising when the weighted graph saturates
    first).  Returns the pairs sorted lexicographically — a canonical
    edge order, so equal seeds give byte-equal arrays.
    """
    if m < 0:
        raise ValueError("m must be non-negative")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the {max_edges} possible edges")
    rng = np.random.default_rng(seed)
    weights = powerlaw_weights(n, exponent)
    probabilities = weights / weights.sum()
    cumulative = np.cumsum(probabilities)
    cumulative[-1] = 1.0
    packed = np.zeros(0, dtype=np.int64)
    rounds = 0
    while packed.size < m:
        rounds += 1
        if rounds > 200:
            raise ValueError(
                f"could not reach m={m} distinct edges on {n} power-law "
                "vertices; lower m or flatten the exponent"
            )
        need = m - packed.size
        draws = np.searchsorted(
            cumulative, rng.random(size=(2 * need + 16, 2))
        ).astype(np.int64)
        lo = np.minimum(draws[:, 0], draws[:, 1])
        hi = np.maximum(draws[:, 0], draws[:, 1])
        keep = lo != hi
        fresh = lo[keep] * np.int64(n) + hi[keep]
        packed = np.unique(np.concatenate([packed, fresh]))
    if packed.size > m:
        # Keep a deterministic subset: uniform choice over the sorted
        # distinct pairs, then restore canonical order.
        packed = np.sort(rng.choice(packed, size=m, replace=False))
    edges = np.empty((packed.size, 2), dtype=np.int64)
    edges[:, 0] = packed // n
    edges[:, 1] = packed % n
    return edges


def write_snap_edge_list(
    path: PathLike,
    edges: np.ndarray,
    n: Optional[int] = None,
    chunk: int = 500_000,
) -> None:
    """Stream ``u v`` lines to ``path`` with the self-describing header."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if n is None:
        n = int(edges.max()) + 1 if edges.size else 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# repro graph n={n} m={edges.shape[0]}\n")
        for lo in range(0, edges.shape[0], chunk):
            block = edges[lo:lo + chunk]
            handle.write(
                "\n".join(f"{u} {v}" for u, v in block.tolist())
            )
            handle.write("\n")


def synthesize_snap_file(
    path: PathLike,
    n: int,
    m: int,
    exponent: float = 2.2,
    seed: int = 0,
) -> Tuple[int, int]:
    """Generate a power-law graph and write it as a SNAP-style file.

    Returns ``(n, m)`` of the written graph.  Equal arguments always
    produce byte-identical files, so fingerprints are stable across
    runs and machines.
    """
    edges = powerlaw_edges(n, m, exponent=exponent, seed=seed)
    write_snap_edge_list(path, edges, n=n)
    return n, int(edges.shape[0])
