"""Tests for the Vose alias sampler (§3.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.util.alias import AliasSampler


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(SamplingError):
            AliasSampler([])

    def test_rejects_negative(self):
        with pytest.raises(SamplingError):
            AliasSampler([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(SamplingError):
            AliasSampler([0.0, 0.0])

    def test_rejects_nan(self):
        with pytest.raises(SamplingError):
            AliasSampler([1.0, float("nan")])

    def test_rejects_matrix(self):
        with pytest.raises(SamplingError):
            AliasSampler(np.ones((2, 2)))

    def test_size_and_total(self):
        sampler = AliasSampler([2.0, 3.0, 5.0])
        assert sampler.size == 3
        assert sampler.total_weight == pytest.approx(10.0)


class TestExactDistribution:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=40,
        ).filter(lambda ws: sum(ws) > 1e-9)
    )
    @settings(max_examples=200)
    def test_table_encodes_normalized_weights(self, weights):
        sampler = AliasSampler(weights)
        implied = sampler.probabilities()
        expected = np.asarray(weights) / sum(weights)
        assert np.allclose(implied, expected, atol=1e-9)

    def test_zero_weight_never_sampled(self, rng):
        sampler = AliasSampler([0.0, 1.0, 0.0, 1.0])
        draws = sampler.sample_many(2000, rng)
        assert set(np.unique(draws)) <= {1, 3}


class TestSampling:
    def test_single_outcome(self, rng):
        sampler = AliasSampler([7.0])
        assert sampler.sample(rng) == 0

    def test_empirical_frequencies(self, rng):
        weights = [1.0, 2.0, 3.0, 4.0]
        sampler = AliasSampler(weights)
        draws = sampler.sample_many(40_000, rng)
        counts = np.bincount(draws, minlength=4) / draws.size
        expected = np.asarray(weights) / 10.0
        assert np.allclose(counts, expected, atol=0.02)

    def test_sample_many_negative(self, rng):
        sampler = AliasSampler([1.0])
        with pytest.raises(SamplingError):
            sampler.sample_many(-1, rng)

    def test_sample_many_zero(self, rng):
        sampler = AliasSampler([1.0, 1.0])
        assert AliasSampler([1.0, 1.0]).sample_many(0, rng).size == 0

    def test_deterministic_given_seed(self):
        sampler = AliasSampler([1.0, 2.0, 3.0])
        a = sampler.sample_many(50, np.random.default_rng(5))
        b = sampler.sample_many(50, np.random.default_rng(5))
        assert np.array_equal(a, b)
