"""Tests for graphlet classification and the estimate containers/metrics."""

from __future__ import annotations

import pytest

from repro.errors import SamplingError
from repro.graph.generators import complete_graph, cycle_graph, path_graph
from repro.graphlets.enumerate import (
    clique_graphlet,
    cycle_graphlet,
    path_graphlet,
    star_graphlet,
)
from repro.sampling.estimates import (
    GraphletEstimates,
    accuracy_census,
    count_errors,
    l1_error,
    rarest_frequency,
)
from repro.sampling.occurrences import GraphletClassifier


class TestClassifier:
    def test_known_shapes(self):
        g = cycle_graph(6)
        classifier = GraphletClassifier(g, 4)
        assert classifier.classify([0, 1, 2, 3]) == path_graphlet(4)
        g2 = complete_graph(5)
        classifier2 = GraphletClassifier(g2, 4)
        assert classifier2.classify([0, 1, 2, 3]) == clique_graphlet(4)

    def test_cycle_detection(self):
        g = cycle_graph(5)
        classifier = GraphletClassifier(g, 5)
        assert classifier.classify([0, 1, 2, 3, 4]) == cycle_graphlet(5)

    def test_star_detection(self):
        from repro.graph.generators import star_graph

        g = star_graph(5)
        classifier = GraphletClassifier(g, 4)
        assert classifier.classify([0, 1, 2, 3]) == star_graphlet(4)

    def test_vertex_order_irrelevant(self):
        g = path_graph(6)
        classifier = GraphletClassifier(g, 4)
        a = classifier.classify([0, 1, 2, 3])
        b = classifier.classify([3, 1, 0, 2])
        assert a == b

    def test_cache_hits(self):
        g = path_graph(5)
        classifier = GraphletClassifier(g, 4)
        classifier.classify([0, 1, 2, 3])
        classifier.classify([3, 2, 1, 0])
        assert classifier.cache_hits == 1
        assert classifier.classified == 2

    def test_rejects_wrong_arity(self):
        classifier = GraphletClassifier(path_graph(5), 4)
        with pytest.raises(SamplingError):
            classifier.classify([0, 1, 2])

    def test_rejects_duplicates(self):
        classifier = GraphletClassifier(path_graph(5), 4)
        with pytest.raises(SamplingError):
            classifier.classify([0, 1, 1, 2])

    def test_k_validation(self):
        with pytest.raises(SamplingError):
            GraphletClassifier(path_graph(3), 1)


class TestEstimatesContainer:
    def make(self):
        return GraphletEstimates(
            k=4,
            counts={1: 90.0, 2: 10.0},
            samples=100,
            hits={1: 90, 2: 10},
            method="naive",
        )

    def test_total_and_frequency(self):
        est = self.make()
        assert est.total == pytest.approx(100.0)
        assert est.frequency(1) == pytest.approx(0.9)
        assert est.frequency(7) == 0.0

    def test_frequencies_sum_to_one(self):
        freqs = self.make().frequencies()
        assert sum(freqs.values()) == pytest.approx(1.0)

    def test_empty(self):
        empty = GraphletEstimates(k=4, counts={})
        assert empty.total == 0.0
        assert empty.frequencies() == {}
        assert empty.frequency(1) == 0.0

    def test_top(self):
        assert self.make().top(1) == [(1, 90.0)]

    def test_distinct(self):
        est = GraphletEstimates(k=4, counts={1: 5.0, 2: 0.0})
        assert est.distinct_graphlets() == 1


class TestErrorMetrics:
    def test_count_errors(self):
        est = GraphletEstimates(k=4, counts={1: 110.0, 2: 0.0})
        truth = {1: 100.0, 2: 50.0, 3: 0.0}
        errors = count_errors(est, truth)
        assert errors[1] == pytest.approx(0.1)
        assert errors[2] == pytest.approx(-1.0)  # missed
        assert 3 not in errors  # zero-truth graphlets skipped

    def test_l1_error_perfect(self):
        est = GraphletEstimates(k=4, counts={1: 60.0, 2: 40.0})
        truth = {1: 600.0, 2: 400.0}
        assert l1_error(est, truth) == pytest.approx(0.0)

    def test_l1_error_disjoint(self):
        est = GraphletEstimates(k=4, counts={1: 1.0})
        truth = {2: 1.0}
        assert l1_error(est, truth) == pytest.approx(2.0)

    def test_l1_requires_truth(self):
        with pytest.raises(ValueError):
            l1_error(GraphletEstimates(k=4, counts={}), {})

    def test_accuracy_census(self):
        est = GraphletEstimates(k=4, counts={1: 100.0, 2: 30.0, 3: 500.0})
        truth = {1: 100.0, 2: 100.0, 3: 400.0}
        count, fraction = accuracy_census(est, truth, tolerance=0.5)
        assert count == 2  # graphlet 2 is off by 70%
        assert fraction == pytest.approx(2 / 3)

    def test_accuracy_census_requires_support(self):
        with pytest.raises(ValueError):
            accuracy_census(GraphletEstimates(k=4, counts={}), {1: 0.0})

    def test_rarest_frequency(self):
        est = GraphletEstimates(
            k=4,
            counts={1: 1000.0, 2: 1.0, 3: 0.5},
            hits={1: 900, 2: 12, 3: 3},
        )
        rarest = rarest_frequency(est, min_hits=10)
        # Graphlet 3 has too few hits; graphlet 2 qualifies.
        assert rarest == pytest.approx(est.frequency(2))

    def test_rarest_frequency_none(self):
        est = GraphletEstimates(k=4, counts={1: 1.0}, hits={1: 2})
        assert rarest_frequency(est, min_hits=10) is None


class TestSerialization:
    def test_json_round_trip(self):
        original = GraphletEstimates(
            k=5,
            counts={0x32: 12.5, 0x3F: 3.0},
            samples=400,
            hits={0x32: 390, 0x3F: 10},
            method="ags",
        )
        restored = GraphletEstimates.from_json(original.to_json())
        assert restored == original

    def test_json_defaults(self):
        restored = GraphletEstimates.from_json(
            '{"k": 4, "counts": {"0x2": 1.0}}'
        )
        assert restored.k == 4
        assert restored.counts == {2: 1.0}
        assert restored.hits == {}
        assert restored.method == "naive"
