"""The out-of-core sharded build: bit-identity and crash safety.

The sharded kernel's contract is *exact* equality with the in-memory
build — same layers, same keys, same count bytes, hence the same samples
and estimates for a fixed seed — whatever the shard count, storage
backend, layout, or sampling method.  Every assertion here is exact
(``array_equal``/``==``), never ``approx``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.sharded import build_table_sharded
from repro.colorcoding.urn import TreeletUrn
from repro.errors import BuildError
from repro.graph.generators import erdos_renyi, star_graph
from repro.graph.graph import Graph
from repro.sampling.naive import naive_estimate
from repro.sampling.occurrences import GraphletClassifier
from repro.table.flush import SpillStore
from repro.table.layer_store import (
    InMemoryStore,
    ShardedStore,
    SpillLayerStore,
)
from repro.treelets.registry import TreeletRegistry

from support.graphgen import powerlaw_edges


def _sharded(graph, coloring, tmp_path, tag, num_shards, layout="dense",
             jobs=1, zero_rooting=True):
    store = ShardedStore(
        num_shards, str(tmp_path / f"shards-{tag}"), owns_directory=True
    )
    table = build_table_sharded(
        graph, coloring, store=store, layout=layout, jobs=jobs,
        zero_rooting=zero_rooting,
    )
    return table, store


def _assert_layers_equal(reference, table, k):
    ref_sizes = [s for s in range(1, k + 1) if reference.has_layer(s)]
    got_sizes = [s for s in range(1, k + 1) if table.has_layer(s)]
    assert got_sizes == ref_sizes
    for size in ref_sizes:
        ref_layer = reference.layer(size)
        layer = table.layer(size)
        assert layer.keys == ref_layer.keys
        assert np.array_equal(
            np.asarray(layer.dense_counts()),
            np.asarray(ref_layer.dense_counts()),
        )


class TestShardedBitIdentity:
    """Randomized property harness: every cell equals the reference."""

    @pytest.mark.parametrize("trial", range(6))
    def test_random_graphs_all_stores_and_layouts(self, trial, tmp_path):
        rng = np.random.default_rng(1000 + trial)
        k = int(rng.integers(3, 6))
        n = int(rng.integers(20, 70))
        m = min(int(rng.integers(n, 4 * n)), n * (n - 1) // 2)
        num_shards = int(rng.integers(2, 8))
        edges = powerlaw_edges(n, m, seed=trial)
        graph = Graph.from_edges(edges, n)
        coloring = ColoringScheme.uniform(
            n, k, rng=np.random.default_rng(2000 + trial)
        )
        registry = TreeletRegistry(k)

        reference = build_table(
            graph, coloring, registry=registry, store=InMemoryStore()
        )
        spilled = build_table(
            graph, coloring, registry=registry,
            store=SpillLayerStore(SpillStore(str(tmp_path / "spill"))),
        )
        _assert_layers_equal(reference, spilled, k)
        for layout in ("dense", "succinct"):
            table, store = _sharded(
                graph, coloring, tmp_path, f"{trial}-{layout}",
                num_shards, layout=layout,
            )
            _assert_layers_equal(reference, table, k)
            store.close()

    @pytest.mark.parametrize("zero_rooting", [True, False])
    def test_sampling_methods_bit_identical(self, zero_rooting, tmp_path):
        k, n = 4, 48
        graph = erdos_renyi(n, 170, rng=3)
        coloring = ColoringScheme.uniform(n, k, rng=4)
        reference = build_table(graph, coloring, zero_rooting=zero_rooting)
        table, store = _sharded(
            graph, coloring, tmp_path, f"zr{zero_rooting}", 3,
            zero_rooting=zero_rooting,
        )
        try:
            ref_urn = TreeletUrn(graph, reference, coloring)
            urn = TreeletUrn(graph, table, coloring)
            for method in ("batched", "loop"):
                expected = ref_urn.sample_batch(
                    257, np.random.default_rng(11), method=method
                )
                got = urn.sample_batch(
                    257, np.random.default_rng(11), method=method
                )
                for a, b in zip(expected, got):
                    assert np.array_equal(a, b)
            classifier = GraphletClassifier(graph, k)
            for batch_size in (256, 1):
                expected = naive_estimate(
                    ref_urn, classifier, 400,
                    np.random.default_rng(7), batch_size=batch_size,
                )
                got = naive_estimate(
                    urn, classifier, 400,
                    np.random.default_rng(7), batch_size=batch_size,
                )
                assert got.counts == expected.counts
        finally:
            store.close()

    def test_parallel_jobs_byte_identical(self, tmp_path):
        graph = erdos_renyi(60, 220, rng=9)
        coloring = ColoringScheme.uniform(60, 5, rng=10)
        serial, store_a = _sharded(graph, coloring, tmp_path, "serial", 4)
        pooled, store_b = _sharded(
            graph, coloring, tmp_path, "pooled", 4, jobs=3
        )
        try:
            _assert_layers_equal(serial, pooled, 5)
        finally:
            store_a.close()
            store_b.close()


class TestShardedDegenerateInputs:
    def test_all_vertices_color_zero(self, tmp_path):
        graph = erdos_renyi(30, 90, rng=2)
        coloring = ColoringScheme.fixed(np.zeros(30, dtype=np.int64), 4)
        reference = build_table(graph, coloring)
        table, store = _sharded(graph, coloring, tmp_path, "allzero", 3)
        _assert_layers_equal(reference, table, 4)
        store.close()

    def test_missing_color_takes_fallback_path(self, tmp_path):
        graph = erdos_renyi(30, 90, rng=2)
        colors = np.zeros(30, dtype=np.int64)
        colors[::2] = 2  # colors 1 and 3 never occur
        coloring = ColoringScheme.fixed(colors, 4)
        for zero_rooting in (True, False):
            reference = build_table(
                graph, coloring, zero_rooting=zero_rooting
            )
            store = ShardedStore(
                3, str(tmp_path / f"fb{zero_rooting}"), owns_directory=True
            )
            table = build_table_sharded(
                graph, coloring, zero_rooting=zero_rooting, store=store
            )
            _assert_layers_equal(reference, table, 4)
            store.close()

    def test_isolated_vertices_and_empty_shards(self, tmp_path):
        # 40 vertices, edges only among the first 6: most shards hold
        # nothing but isolated vertices.
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]
        graph = Graph.from_edges(edges, 40)
        coloring = ColoringScheme.uniform(40, 4, rng=8)
        reference = build_table(graph, coloring)
        table, store = _sharded(graph, coloring, tmp_path, "iso", 7)
        _assert_layers_equal(reference, table, 4)
        store.close()

    def test_shard_boundary_splits_a_neighborhood(self, tmp_path):
        # A star centered inside the first shard whose leaves span every
        # other shard: each leaf's neighbor sum crosses shard boundaries.
        graph = star_graph(12)
        coloring = ColoringScheme.uniform(
            graph.num_vertices, 4, rng=12
        )
        reference = build_table(graph, coloring)
        for num_shards in (2, 5, 13):
            table, store = _sharded(
                graph, coloring, tmp_path, f"star{num_shards}", num_shards
            )
            _assert_layers_equal(reference, table, 4)
            store.close()

    def test_more_shards_than_vertices(self, tmp_path):
        graph = erdos_renyi(5, 7, rng=1)
        coloring = ColoringScheme.uniform(5, 3, rng=1)
        reference = build_table(graph, coloring)
        table, store = _sharded(graph, coloring, tmp_path, "wide", 9)
        _assert_layers_equal(reference, table, 3)
        store.close()


class TestShardedValidation:
    def test_requires_directory_backed_store(self):
        graph = erdos_renyi(10, 20, rng=1)
        coloring = ColoringScheme.uniform(10, 3, rng=1)
        with pytest.raises(BuildError):
            build_table_sharded(graph, coloring, store=ShardedStore(2))
        with pytest.raises(BuildError):
            build_table_sharded(graph, coloring, store=None)

    def test_rejects_mismatched_coloring(self, tmp_path):
        graph = erdos_renyi(10, 20, rng=1)
        coloring = ColoringScheme.uniform(12, 3, rng=1)
        store = ShardedStore(2, str(tmp_path / "s"), owns_directory=True)
        with pytest.raises(BuildError):
            build_table_sharded(graph, coloring, store=store)
        store.close()


_KILL_SCRIPT = textwrap.dedent(
    """
    import os, signal
    import numpy as np
    from repro.colorcoding import sharded
    from repro.colorcoding.coloring import ColoringScheme
    from repro.graph.generators import erdos_renyi
    from repro.table.layer_store import ShardedStore

    directory = {directory!r}
    graph = erdos_renyi(36, 120, rng=2)
    coloring = ColoringScheme.uniform(36, 4, rng=3)

    original = ShardedStore.commit_shard
    def killing_commit(self, size, shard, tmp_path):
        if size == 2 and shard == 1:
            # Die mid-seal: the tmp file is written, the rename never
            # happens, and no cleanup code runs.
            os.kill(os.getpid(), signal.SIGKILL)
        return original(self, size, shard, tmp_path)
    ShardedStore.commit_shard = killing_commit

    store = ShardedStore(3, directory)
    sharded.build_table_sharded(graph, coloring, store=store)
    """
)


class TestCrashSafety:
    """SIGKILL mid-seal leaves only dead-owner scratch, which reaps."""

    def test_killed_build_leaves_no_live_orphans(self, tmp_path):
        directory = str(tmp_path / "crash-shards")
        os.makedirs(directory)
        script = _KILL_SCRIPT.format(directory=directory)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [
                os.path.join(os.path.dirname(__file__), os.pardir, "src"),
                os.path.dirname(os.path.dirname(__file__)) + "/tests",
                env.get("PYTHONPATH", ""),
            ])
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr

        leftovers = [
            name for name in os.listdir(directory) if ".tmp-" in name
        ]
        assert leftovers, "the kill should strand the in-flight tmp file"
        # Every stranded tmp belongs to the dead pid, so a fresh store
        # reaps them all; close() then leaves nothing behind.
        store = ShardedStore(3, directory)
        assert store.reap_stale_tmp() == len(leftovers)
        store.close()
        remaining = [
            name for name in os.listdir(directory) if ".tmp-" in name
        ]
        assert remaining == []

    def test_restarted_build_succeeds_after_crash(self, tmp_path):
        directory = str(tmp_path / "retry-shards")
        os.makedirs(directory)
        script = _KILL_SCRIPT.format(directory=directory)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [
                os.path.join(os.path.dirname(__file__), os.pardir, "src"),
                env.get("PYTHONPATH", ""),
            ])
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr

        graph = erdos_renyi(36, 120, rng=2)
        coloring = ColoringScheme.uniform(36, 4, rng=3)
        reference = build_table(graph, coloring)
        # build_table_sharded reaps the stale scratch itself on entry.
        store = ShardedStore(3, directory)
        table = build_table_sharded(graph, coloring, store=store)
        _assert_layers_equal(reference, table, 4)
        store.close()
