"""Tests for the telemetry plane (repro.telemetry) and its wiring.

Four load-bearing contracts:

1. **Determinism** — telemetry on or off, estimates and post-run RNG
   states are bit-identical; trace ids never come from the seed stream.
2. **Thread-safety** — the registry (and the ``Instrumentation`` shim
   over it) tallies exactly under concurrent mutation; this is the
   fix for the serve plane's old read-modify-write races.
3. **Transport** — snapshots stay flat, picklable dicts that merge
   losslessly, histograms included, so the process-pool engine and
   artifact manifests keep working.
4. **Name stability** — the ``/healthz`` document and the ``/metrics``
   exposition families are pinned: renaming a metric breaks dashboards,
   so it must break a test first.
"""

from __future__ import annotations

import json
import pickle
import threading
import urllib.request

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.motivo import MotivoConfig, MotivoCounter
from repro.telemetry import (
    JsonLinesSink,
    MetricsRegistry,
    TelemetryConfig,
    Tracer,
    activate,
    build_tracer,
    current_tracer,
    exponential_boundaries,
    histogram_quantile,
    render_prometheus,
    span,
)
from repro.telemetry.tracing import NOOP_SPAN, new_trace_id
from repro.util.instrument import Instrumentation


class TestMetricsRegistry:
    def test_counter_and_timer_families(self):
        registry = MetricsRegistry()
        registry.inc("draws")
        registry.inc("draws", 4)
        registry.add_time("descent", 0.5)
        assert registry.counter_value("draws") == 5
        assert registry.timer_value("descent") == 0.5
        assert registry.counter_value("missing") == 0

    def test_timer_context_accumulates(self):
        registry = MetricsRegistry()
        with registry.timer("block"):
            pass
        with registry.timer("block"):
            pass
        assert registry.timer_value("block") > 0

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("bytes", 10)
        registry.set_gauge("bytes", 3)
        assert registry.gauge_value("bytes") == 3.0

    def test_histogram_buckets_and_sum(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 99.0):
            registry.observe("lat", value, boundaries=(1.0, 2.0, 4.0))
        state = registry.histogram_state("lat")
        assert state["le"] == [1.0, 2.0, 4.0]
        assert state["counts"] == [1, 1, 0, 1]  # last bucket is +Inf
        assert state["sum"] == pytest.approx(101.0)

    def test_histogram_boundaries_fixed_by_first_observe(self):
        registry = MetricsRegistry()
        registry.observe("lat", 1.0, boundaries=(1.0, 2.0))
        registry.observe("lat", 1.0, boundaries=(5.0, 6.0))  # ignored
        assert registry.histogram_state("lat")["le"] == [1.0, 2.0]

    def test_snapshot_shape_is_flat_and_json_safe(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.add_time("t", 1.0)
        registry.set_gauge("g", 2.0)
        registry.observe("h", 0.5, boundaries=(1.0,))
        snapshot = registry.snapshot()
        assert snapshot["count.c"] == 1.0
        assert snapshot["time.t"] == 1.0
        assert snapshot["gauge.g"] == 2.0
        assert snapshot["hist.h"]["counts"] == [1, 0]
        json.dumps(snapshot)  # must not raise

    def test_merge_snapshot_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry in (a, b):
            registry.inc("c", 2)
            registry.add_time("t", 0.25)
            registry.observe("h", 0.5, boundaries=(1.0, 2.0))
        b.set_gauge("g", 7.0)
        a.merge_snapshot(b.snapshot())
        assert a.counter_value("c") == 4
        assert a.timer_value("t") == 0.5
        assert a.gauge_value("g") == 7.0  # gauges take the incoming value
        assert a.histogram_state("h")["counts"] == [2, 0, 0]

    def test_merge_rejects_mismatched_boundaries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.5, boundaries=(1.0,))
        b.observe("h", 0.5, boundaries=(2.0,))
        with pytest.raises(ValueError, match="boundaries"):
            a.merge_snapshot(b.snapshot())

    def test_reset_zeroes_every_family(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1)
        registry.observe("h", 1.0)
        registry.reset()
        assert registry.snapshot() == {}

    def test_pickle_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("c", 3)
        registry.observe("h", 0.5, boundaries=(1.0,))
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()
        clone.inc("c")  # lock works after unpickling

    def test_exponential_boundaries(self):
        assert exponential_boundaries(0.001, 2, 4) == (
            0.001, 0.002, 0.004, 0.008
        )
        with pytest.raises(ValueError):
            exponential_boundaries(0.0, 2, 4)
        with pytest.raises(ValueError):
            exponential_boundaries(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_boundaries(1.0, 2.0, 0)

    def test_histogram_quantile_interpolates(self):
        registry = MetricsRegistry()
        boundaries = (1.0, 2.0, 4.0)
        for value in (0.5, 1.5, 1.6, 3.0):
            registry.observe("h", value, boundaries=boundaries)
        state = registry.histogram_state("h")
        # Rank 2 of 4 lands halfway through the (1, 2] bucket (count 2,
        # one rank already consumed): 1 + (2-1) * (2-1)/2 = 1.5.
        assert histogram_quantile(state, 0.5) == pytest.approx(1.5)
        assert 0.0 < histogram_quantile(state, 0.25) <= 1.0
        # p99 lands inside the (2, 4] bucket.
        assert 2.0 < histogram_quantile(state, 0.99) <= 4.0
        assert histogram_quantile({"le": [], "counts": []}, 0.5) == 0.0


class TestThreadSafety:
    """Satellite (a): shared-registry mutation is race-free by
    construction — N threads hammering one Instrumentation must tally
    exactly, where the old dict-bag implementation lost increments."""

    def test_shared_instrumentation_hammer(self):
        registry = MetricsRegistry()
        views = [Instrumentation(registry=registry) for _ in range(8)]
        increments = 2_000

        def hammer(instrumentation) -> None:
            for _ in range(increments):
                instrumentation.count("hits")
                instrumentation.registry.add_time("t", 1.0)
                # Compound read-modify-write through the live view:
                # exact only because the exposed RLock lets callers
                # extend the critical section.
                with instrumentation.registry.lock:
                    instrumentation.timings["rmw"] = (
                        instrumentation.timings["rmw"] + 1.0
                    )

        threads = [
            threading.Thread(target=hammer, args=(view,)) for view in views
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = len(views) * increments
        assert registry.counter_value("hits") == expected
        assert registry.timer_value("t") == float(expected)
        assert registry.timer_value("rmw") == float(expected)

    def test_concurrent_observe_and_snapshot(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def observe() -> None:
            while not stop.is_set():
                registry.observe("lat", 0.01)
                registry.inc("n")

        workers = [threading.Thread(target=observe) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            for _ in range(50):
                snapshot = registry.snapshot()
                if "hist.lat" in snapshot:
                    state = snapshot["hist.lat"]
                    # A snapshot is internally consistent: the bucket
                    # total can never exceed what later reads report.
                    assert sum(state["counts"]) <= sum(
                        registry.histogram_state("lat")["counts"]
                    )
        finally:
            stop.set()
            for worker in workers:
                worker.join()
        total = sum(registry.histogram_state("lat")["counts"])
        assert total == registry.counter_value("n")


class TestTracing:
    def test_trace_ids_are_not_rng_draws(self):
        state_before = np.random.get_state()[1].copy()
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 32 for i in ids)
        assert np.array_equal(np.random.get_state()[1], state_before)

    def test_nested_spans_share_trace_and_link_parents(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonLinesSink(str(path)))
        with tracer.span("outer", k=5) as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
        tracer.close()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        by_name = {record["name"]: record for record in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["inner"]["trace"] == by_name["outer"]["trace"]
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["attrs"] == {"k": 5}
        assert by_name["inner"]["dur_ms"] >= 0

    def test_inbound_trace_id_seeds_the_root_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonLinesSink(str(path)))
        with tracer.span("root", trace_id="client-abc123"):
            pass
        tracer.close()
        record = json.loads(path.read_text().splitlines()[0])
        assert record["trace"] == "client-abc123"

    def test_error_spans_record_the_exception_type(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonLinesSink(str(path)))
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        tracer.close()
        assert json.loads(path.read_text())["error"] == "ValueError"

    def test_ambient_span_is_shared_noop_when_disabled(self):
        assert current_tracer() is None
        assert span("anything", k=3) is NOOP_SPAN
        with span("still-nothing"):
            pass  # must be a working no-op context manager

    def test_activate_scopes_and_restores(self, tmp_path):
        tracer = Tracer(JsonLinesSink(str(tmp_path / "t.jsonl")))
        with activate(tracer):
            assert current_tracer() is tracer
            with activate(None):  # shield an inner block
                assert current_tracer() is None
            assert current_tracer() is tracer
        assert current_tracer() is None
        tracer.close()

    def test_tracer_is_per_thread(self, tmp_path):
        tracer = Tracer(JsonLinesSink(str(tmp_path / "t.jsonl")))
        seen = {}

        def other_thread() -> None:
            seen["tracer"] = current_tracer()

        with activate(tracer):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert seen["tracer"] is None
        tracer.close()

    def test_sink_reopens_after_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonLinesSink(str(path))
        sink.write({"a": 1})
        sink.close()
        sink.write({"b": 2})  # lazily reopens, appends
        sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_build_tracer_from_config(self, tmp_path):
        assert build_tracer(None) is None
        assert build_tracer(TelemetryConfig()) is None
        tracer = build_tracer(
            TelemetryConfig(trace_out=str(tmp_path / "t.jsonl"))
        )
        assert isinstance(tracer, Tracer)
        tracer.close()


class TestBitIdentity:
    """The determinism hard bar: telemetry on or off, estimates and
    post-run RNG states are bit-identical."""

    @pytest.fixture(scope="class")
    def host(self):
        return erdos_renyi(70, 210, rng=9)

    def _run(self, host, telemetry):
        config = MotivoConfig(k=4, seed=33, telemetry=telemetry)
        counter = MotivoCounter(host, config)
        counter.build()
        naive = counter.sample_naive(400)
        ags = counter.sample_ags(400, cover_threshold=150)
        rng_state = counter._rng.bit_generator.state
        counter.close()
        return naive, ags, rng_state

    def test_estimates_and_rng_state_identical(self, host, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        off = self._run(host, None)
        on = self._run(host, TelemetryConfig(trace_out=str(trace_path)))
        assert off[0].counts == on[0].counts
        assert off[0].hits == on[0].hits
        assert off[1].estimates.counts == on[1].estimates.counts
        assert off[1].covered == on[1].covered
        assert off[2] == on[2], "telemetry consumed master-seed RNG draws"
        # And the traced run actually traced.
        names = {
            json.loads(line)["name"]
            for line in trace_path.read_text().splitlines()
        }
        assert "buildup" in names
        assert "sample.naive" in names
        assert "sample.ags" in names

    def test_configure_telemetry_swaps_tracer(self, host, tmp_path):
        counter = MotivoCounter(host, MotivoConfig(k=4, seed=33))
        counter.build()
        path = tmp_path / "late.jsonl"
        counter.configure_telemetry(
            TelemetryConfig(trace_out=str(path))
        )
        counter.sample_naive(50)
        counter.configure_telemetry(None)
        counter.sample_naive(50)
        counter.close()
        names = [
            json.loads(line)["name"]
            for line in path.read_text().splitlines()
        ]
        assert names.count("sample.naive") == 1


class TestExposition:
    def test_render_families(self):
        registry = MetricsRegistry()
        registry.inc("serve_requests", 3)
        registry.add_time("sample_gather", 1.5)
        registry.set_gauge("serve_open_tables", 2)
        registry.observe("serve_request_seconds", 0.003,
                         boundaries=(0.001, 0.01))
        body = render_prometheus(registry.snapshot())
        assert "# TYPE motivo_serve_requests_total counter" in body
        assert "motivo_serve_requests_total 3" in body
        assert "motivo_sample_gather_seconds_total 1.5" in body
        assert "# TYPE motivo_serve_open_tables gauge" in body
        assert "motivo_serve_open_tables 2" in body
        assert "# TYPE motivo_serve_request_seconds histogram" in body
        assert 'motivo_serve_request_seconds_bucket{le="0.001"} 0' in body
        assert 'motivo_serve_request_seconds_bucket{le="0.01"} 1' in body
        assert 'motivo_serve_request_seconds_bucket{le="+Inf"} 1' in body
        assert "motivo_serve_request_seconds_count 1" in body
        assert body.endswith("\n")

    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 3.0):
            registry.observe("h", value, boundaries=(1.0, 2.0))
        body = render_prometheus(registry.snapshot())
        assert 'motivo_h_bucket{le="1"} 1' in body
        assert 'motivo_h_bucket{le="2"} 2' in body
        assert 'motivo_h_bucket{le="+Inf"} 3' in body

    def test_names_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("weird-name.with spaces")
        body = render_prometheus(registry.snapshot())
        assert "motivo_weird_name_with_spaces_total 1" in body

    def test_prometheus_syntax(self):
        """Every non-comment line is `name[{labels}] value`."""
        import re

        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 0.5)
        line_ok = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? "
            r"[0-9.eE+-]+(\+Inf)?$"
        )
        for line in render_prometheus(registry.snapshot()).splitlines():
            if line.startswith("# TYPE "):
                continue
            assert line_ok.match(line), line


class TestArtifactCacheTelemetry:
    """Satellite (f): cache decisions are visible as counters."""

    @pytest.fixture(scope="class")
    def host(self):
        return erdos_renyi(60, 180, rng=12)

    def test_counters_move_on_warm_reopen(self, host, tmp_path):
        root = str(tmp_path / "cache")
        cold = MotivoCounter(
            host, MotivoConfig(k=4, seed=7, artifact_dir=root)
        )
        cold.build()
        registry = cold.instrumentation.registry
        assert registry.counter_value("artifact_cache_lookup_misses") == 1
        assert registry.counter_value("artifact_cache_lookup_hits") == 0
        cold.close()

        warm = MotivoCounter(
            host, MotivoConfig(k=4, seed=7, artifact_dir=root)
        )
        warm.build()
        registry = warm.instrumentation.registry
        assert registry.counter_value("artifact_cache_lookup_hits") == 1
        assert registry.counter_value("artifact_cache_hits") == 1
        # The adopted artifact's manifest merges the cold build's own
        # instrumentation back in, so the build-time lookup miss rides
        # along — the load-bearing fact is that *this* open was counted
        # as a hit, never a fresh miss on the facade counter.
        assert registry.counter_value("artifact_cache_misses") == 1
        warm.close()

    def test_evict_verify_and_bytes_gauge(self, host, tmp_path):
        from repro.artifacts import ArtifactCache

        root = str(tmp_path / "cache")
        counter = MotivoCounter(
            host, MotivoConfig(k=4, seed=7, artifact_dir=root)
        )
        counter.build()
        counter.close()

        registry = MetricsRegistry()
        cache = ArtifactCache(root, registry=registry)
        (entry,) = cache.entries()
        cache.verify(entry.key)  # raises on digest mismatch
        assert registry.counter_value("artifact_cache_verifies") == 1
        assert cache.bytes_on_disk() > 0
        assert registry.gauge_value("artifact_cache_bytes") > 0
        assert cache.evict(entry.key)
        assert registry.counter_value("artifact_cache_evictions") == 1
        cache.bytes_on_disk()
        assert registry.gauge_value("artifact_cache_bytes") == 0
