"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)


@pytest.fixture
def rng():
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_er():
    """A small connected-ish random graph used across modules."""
    return erdos_renyi(24, 60, rng=7)


@pytest.fixture
def tiny_er():
    """A tiny random graph for brute-force cross-checks."""
    return erdos_renyi(14, 30, rng=11)


@pytest.fixture
def k4_path():
    return path_graph(4)


@pytest.fixture
def k5_clique():
    return complete_graph(5)


@pytest.fixture
def c6():
    return cycle_graph(6)


@pytest.fixture
def star5():
    return star_graph(5)
