"""Tests for the naive (CC-style) estimator against exact ground truth."""

from __future__ import annotations

import pytest

from repro.errors import SamplingError
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.urn import TreeletUrn
from repro.exact.brute import brute_force_counts
from repro.graph.generators import complete_graph, erdos_renyi
from repro.graphlets.enumerate import clique_graphlet
from repro.graphlets.spanning import spanning_tree_count
from repro.sampling.naive import naive_estimate, naive_hit_counts
from repro.sampling.occurrences import GraphletClassifier


def build_pipeline(graph, k, seed):
    coloring = ColoringScheme.uniform(graph.num_vertices, k, rng=seed)
    table = build_table(graph, coloring)
    urn = TreeletUrn(graph, table, coloring)
    classifier = GraphletClassifier(graph, k)
    return urn, classifier, coloring


class TestEstimatorTargets:
    def test_matches_exact_colorful_counts(self, rng):
        """ĝ_i must converge to c_i / p_k, the coloring-conditional target."""
        graph = erdos_renyi(18, 40, rng=30)
        k = 4
        urn, classifier, coloring = build_pipeline(graph, k, seed=31)
        exact_colorful = brute_force_counts(graph, k, coloring=coloring)
        estimates = naive_estimate(urn, classifier, 60_000, rng)
        p_k = coloring.colorful_probability()
        for bits, colorful_count in exact_colorful.items():
            target = colorful_count / p_k
            if colorful_count >= 3:  # enough copies for sampling accuracy
                assert estimates.counts[bits] == pytest.approx(
                    target, rel=0.25
                ), hex(bits)

    def test_complete_graph_single_graphlet(self, rng):
        """On K_6 every 4-subset induces the 4-clique."""
        graph = complete_graph(6)
        k = 4
        urn, classifier, coloring = build_pipeline(graph, k, seed=32)
        estimates = naive_estimate(urn, classifier, 4000, rng)
        assert set(estimates.counts) == {clique_graphlet(4)}
        exact = brute_force_counts(graph, k, coloring=coloring)
        expected = exact[clique_graphlet(4)] / coloring.colorful_probability()
        assert estimates.counts[clique_graphlet(4)] == pytest.approx(expected)

    def test_hits_recorded(self, rng):
        graph = erdos_renyi(20, 50, rng=33)
        urn, classifier, _ = build_pipeline(graph, 4, seed=34)
        estimates = naive_estimate(urn, classifier, 500, rng)
        assert sum(estimates.hits.values()) == 500
        assert estimates.samples == 500
        assert estimates.method == "naive"


class TestMechanics:
    def test_hit_counts_total(self, rng):
        graph = erdos_renyi(20, 50, rng=35)
        urn, classifier, _ = build_pipeline(graph, 4, seed=36)
        hits = naive_hit_counts(urn, classifier, 200, rng)
        assert sum(hits.values()) == 200

    def test_requires_positive_samples(self, rng):
        graph = erdos_renyi(20, 50, rng=37)
        urn, classifier, _ = build_pipeline(graph, 4, seed=38)
        with pytest.raises(SamplingError):
            naive_estimate(urn, classifier, 0, rng)

    def test_sigma_passthrough(self, rng):
        """Precomputed σ values must be used as-is."""
        graph = complete_graph(5)
        k = 4
        # Seed 42 yields a coloring with all 4 colors on the 5 vertices.
        urn, classifier, _ = build_pipeline(graph, k, seed=42)
        bits = clique_graphlet(4)
        true_sigma = spanning_tree_count(bits, k)
        doubled = naive_estimate(
            urn, classifier, 300, rng, sigma={bits: 2 * true_sigma}
        )
        normal = naive_estimate(urn, classifier, 300, rng)
        # Doubling sigma halves the estimate.
        assert doubled.counts[bits] == pytest.approx(
            normal.counts[bits] / 2, rel=0.25
        )

    def test_estimator_unbiased_over_colorings(self):
        """E[ĝ_i] over colorings ≈ g_i (Theorem on ĝ_i = c_i / p_k)."""
        import numpy as np

        graph = erdos_renyi(16, 34, rng=40)
        k = 3
        truth = brute_force_counts(graph, k)
        runs = 40
        sums = {bits: 0.0 for bits in truth}
        for run in range(runs):
            coloring = ColoringScheme.uniform(16, k, rng=1000 + run)
            table = build_table(graph, coloring)
            urn = TreeletUrn(graph, table, coloring)
            classifier = GraphletClassifier(graph, k)
            estimates = naive_estimate(
                urn, classifier, 4000, np.random.default_rng(run)
            )
            for bits in truth:
                sums[bits] += estimates.counts.get(bits, 0.0) / runs
        for bits, true_count in truth.items():
            assert sums[bits] == pytest.approx(true_count, rel=0.25), hex(bits)
