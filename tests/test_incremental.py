"""Incremental maintenance under edge updates: bit-identity everywhere.

The delta subsystem's contract mirrors the sharded build's: *exact*
equality with the oracle — a fresh build on the updated graph under the
same coloring — for the table bytes, the kept key lists, the estimates,
and the master RNG stream.  Every assertion here is exact
(``array_equal``/``==``), never ``approx``.

The harness churns random graphs with random mixed insert/delete
batches and checks the maintained state against fresh rebuilds across
layouts (dense, succinct), layer stores (in-memory, spilled, sharded)
and both sampling methods, plus the sampling-plane cache retention
paths (kept gathered store with live dirty lanes; threshold flush), the
empty-urn lifecycle, delta artifacts and compaction, and the facade /
serve / CLI wiring.
"""

from __future__ import annotations

import hashlib
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.artifacts import (
    compact_table,
    load_manifest,
    load_table_delta,
    open_table,
    save_table_delta,
)
from repro.cli import main as cli_main
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.incremental import (
    apply_edge_updates,
    touched_frontiers,
)
from repro.errors import ArtifactError, BuildError
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.motivo import MotivoConfig, MotivoCounter
from repro.serve import SamplingService, serve_http

from support.graphgen import powerlaw_edges


def _edge_list(graph: Graph):
    return [(u, v) for u, v in graph.edges()]


def _mixed_batch(rng, graph: Graph, inserts: int, deletes: int):
    """A random batch: ``inserts`` absent pairs in, ``deletes`` edges out."""
    n = graph.num_vertices
    batch = []
    present = _edge_list(graph)
    if present and deletes:
        picks = rng.choice(len(present), size=min(deletes, len(present)),
                           replace=False)
        batch.extend(("-", *present[int(i)]) for i in picks)
    seen = set()
    while len(seen) < inserts:
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u == v:
            continue
        a, b = min(u, v), max(u, v)
        if (a, b) in seen or graph.has_edge(a, b):
            continue
        seen.add((a, b))
        batch.append(("+", a, b))
    rng.shuffle(batch)
    return batch


def _assert_tables_equal(reference, table, k):
    ref_sizes = [s for s in range(1, k + 1) if reference.has_layer(s)]
    got_sizes = [s for s in range(1, k + 1) if table.has_layer(s)]
    assert got_sizes == ref_sizes
    for size in ref_sizes:
        ref_layer = reference.layer(size)
        layer = table.layer(size)
        assert layer.keys == ref_layer.keys
        assert np.array_equal(
            np.asarray(layer.dense_counts()),
            np.asarray(ref_layer.dense_counts()),
        )


def _digest(table, k: int) -> str:
    digest = hashlib.sha256()
    for h in range(1, k + 1):
        layer = table.layer(h)
        digest.update(repr(layer.keys).encode())
        digest.update(np.ascontiguousarray(
            layer.dense_counts(), dtype=np.float64).tobytes())
    return digest.hexdigest()


def _rng_state(counter: MotivoCounter):
    return counter._rng.bit_generator.state


class TestGraphSplice:
    """``Graph.apply_updates`` against the from-scratch constructor."""

    @pytest.mark.parametrize("trial", range(5))
    def test_splice_equals_from_edges(self, trial):
        rng = np.random.default_rng(4100 + trial)
        n = int(rng.integers(15, 60))
        m = min(int(rng.integers(n, 3 * n)), n * (n - 1) // 2)
        graph = Graph.from_edges(powerlaw_edges(n, m, seed=trial), n)
        batch = _mixed_batch(rng, graph, inserts=int(rng.integers(0, 6)),
                             deletes=int(rng.integers(0, 6)))
        new_graph, touched = graph.apply_updates(batch)

        edges = set(_edge_list(graph))
        for op, u, v in batch:
            pair = (min(u, v), max(u, v))
            (edges.add if op == "+" else edges.discard)(pair)
        expected = Graph.from_edges(sorted(edges), n)
        assert np.array_equal(new_graph.indptr, expected.indptr)
        assert np.array_equal(new_graph.indices, expected.indices)
        assert new_graph.fingerprint() == expected.fingerprint()
        assert np.array_equal(touched, np.sort(touched))

    def test_noop_batch_changes_nothing(self):
        graph = erdos_renyi(20, 40, rng=3)
        u, v = next(iter(graph.edges()))
        absent = next(
            (a, b) for a in range(20) for b in range(a + 1, 20)
            if not graph.has_edge(a, b)
        )
        new_graph, touched = graph.apply_updates(
            [("+", u, v), ("-", *absent)]
        )
        assert touched.size == 0
        assert new_graph.fingerprint() == graph.fingerprint()

    def test_last_op_wins_within_batch(self):
        graph = erdos_renyi(20, 40, rng=3)
        absent = next(
            (a, b) for a in range(20) for b in range(a + 1, 20)
            if not graph.has_edge(a, b)
        )
        new_graph, touched = graph.apply_updates(
            [("+", *absent), ("-", *absent)]
        )
        assert touched.size == 0
        assert new_graph.fingerprint() == graph.fingerprint()


class TestTouchedFrontiers:
    def test_balls_are_union_bfs_balls(self):
        rng = np.random.default_rng(11)
        n = 40
        graph = Graph.from_edges(powerlaw_edges(n, 70, seed=2), n)
        batch = _mixed_batch(rng, graph, inserts=2, deletes=2)
        new_graph, _ = graph.apply_updates(batch)
        _, _, endpoints = graph.resolve_updates(batch)
        k = 5
        balls = touched_frontiers(graph, new_graph, endpoints, k)
        assert len(balls) == k - 1

        # Reference: BFS over the union adjacency.
        union = {v: set() for v in range(n)}
        for g in (graph, new_graph):
            for u, v in g.edges():
                union[u].add(v)
                union[v].add(u)
        ball = set(int(e) for e in endpoints)
        for radius, got in enumerate(balls):
            assert np.array_equal(got, np.asarray(sorted(ball)))
            ball |= {w for v in ball for w in union[v]}

    def test_nested(self):
        graph = erdos_renyi(30, 60, rng=1)
        new_graph, _ = graph.apply_updates([("+", 0, 1)])
        balls = touched_frontiers(
            graph, new_graph, np.asarray([0, 1]), 5
        )
        for inner, outer in zip(balls, balls[1:]):
            assert np.isin(inner, outer).all()


class TestDeltaBitIdentity:
    """The core property: delta-maintained table == fresh rebuild."""

    @pytest.mark.parametrize("trial", range(6))
    def test_random_churn_matches_fresh_build(self, trial):
        rng = np.random.default_rng(5200 + trial)
        k = int(rng.integers(3, 6))
        n = int(rng.integers(24, 60))
        m = min(int(rng.integers(n, 3 * n)), n * (n - 1) // 2)
        layout = "dense" if trial % 2 == 0 else "succinct"
        zero_rooting = trial % 3 != 0
        graph = Graph.from_edges(powerlaw_edges(n, m, seed=trial), n)
        coloring = ColoringScheme.uniform(
            n, k, rng=np.random.default_rng(6200 + trial)
        )
        table = build_table(
            graph, coloring, layout=layout, zero_rooting=zero_rooting
        )
        for _round in range(3):
            batch = _mixed_batch(
                rng, graph,
                inserts=int(rng.integers(1, 6)),
                deletes=int(rng.integers(0, 6)),
            )
            result = apply_edge_updates(table, graph, batch, coloring)
            fresh = build_table(
                result.graph, coloring, layout=layout,
                zero_rooting=zero_rooting,
            )
            _assert_tables_equal(fresh, result.table, k)
            for h in range(2, k + 1):
                assert (
                    result.table.layer(h).layout == fresh.layer(h).layout
                )
            graph, table = result.graph, result.table

    def test_in_place_matches_copy_path(self):
        n, m, k = 40, 90, 4
        graph = erdos_renyi(n, m, rng=8)
        coloring = ColoringScheme.uniform(n, k, rng=9)
        batch = [("+", 0, 1), ("-", *next(iter(graph.edges())))]
        copied = apply_edge_updates(
            build_table(graph, coloring), graph, batch, coloring,
            in_place=False,
        )
        patched = apply_edge_updates(
            build_table(graph, coloring), graph, batch, coloring,
            in_place=True,
        )
        _assert_tables_equal(copied.table, patched.table, k)
        assert copied.dirty_columns is not None
        assert np.array_equal(copied.dirty_columns, patched.dirty_columns)

    def test_isolated_vertex_gains_first_edge(self):
        n, k = 20, 3
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)], n)
        coloring = ColoringScheme.uniform(n, k, rng=4)
        table = build_table(graph, coloring)
        result = apply_edge_updates(
            table, graph, [("+", 10, 11), ("+", 11, 12)], coloring
        )
        fresh = build_table(result.graph, coloring)
        _assert_tables_equal(fresh, result.table, k)

    def test_mismatched_coloring_rejected(self):
        graph = erdos_renyi(20, 40, rng=2)
        coloring = ColoringScheme.uniform(20, 3, rng=2)
        table = build_table(graph, coloring)
        wrong = ColoringScheme.uniform(20, 4, rng=2)
        with pytest.raises(BuildError):
            apply_edge_updates(table, graph, [("+", 0, 1)], wrong)


class TestCounterUpdateAcrossStores:
    """update() bit-identity for every layout × store combination."""

    def _configs(self, tmp_path):
        return {
            "dense": MotivoConfig(k=4, seed=21),
            "succinct": MotivoConfig(k=4, seed=21, table_layout="succinct"),
            "spill": MotivoConfig(
                k=4, seed=21, spill_dir=str(tmp_path / "spill")
            ),
            "sharded": MotivoConfig(
                k=4, seed=21, num_shards=3,
                shard_dir=str(tmp_path / "shards"),
            ),
        }

    @pytest.mark.parametrize("store", ["dense", "succinct", "spill",
                                       "sharded"])
    def test_update_equals_fresh_build_and_samples(self, store, tmp_path):
        graph = erdos_renyi(40, 100, rng=6)
        config = self._configs(tmp_path)[store]
        counter = MotivoCounter(graph, config)
        counter.build()
        rng = np.random.default_rng(900)
        batch = _mixed_batch(rng, graph, inserts=3, deletes=3)
        stats = counter.update(batch)
        assert stats["mode"] == "incremental"
        assert stats["updates_applied"] == len(batch)
        assert stats["rows_touched"] > 0

        fresh = MotivoCounter(counter.graph, MotivoConfig(k=4, seed=21))
        fresh.build()
        assert _digest(counter.table, 4) == _digest(fresh.table, 4)
        assert _rng_state(counter) == _rng_state(fresh)
        # Both sampling methods, both counters at identical stream
        # positions: estimates and post-draw states must match exactly.
        naive_inc = counter.sample_naive(200)
        naive_fresh = fresh.sample_naive(200)
        assert naive_inc.counts == naive_fresh.counts
        assert naive_inc.hits == naive_fresh.hits
        ags_inc = counter.sample_ags(150, 20).estimates
        ags_fresh = fresh.sample_ags(150, 20).estimates
        assert ags_inc.counts == ags_fresh.counts
        assert _rng_state(counter) == _rng_state(fresh)
        counter.close()
        fresh.close()

    def test_rebuild_mode_is_the_oracle(self):
        graph = erdos_renyi(40, 100, rng=6)
        inc = MotivoCounter(graph, MotivoConfig(k=4, seed=5))
        ora = MotivoCounter(
            graph, MotivoConfig(k=4, seed=5, incremental_updates=False)
        )
        inc.build()
        ora.build()
        batch = _mixed_batch(np.random.default_rng(31), graph, 4, 4)
        assert inc.update(batch)["mode"] == "incremental"
        assert ora.update(batch)["mode"] == "rebuild"
        assert _digest(inc.table, 4) == _digest(ora.table, 4)
        assert inc.sample_naive(100).counts == ora.sample_naive(100).counts
        inc.close()
        ora.close()

    def test_noop_batch_short_circuits(self):
        graph = erdos_renyi(30, 60, rng=2)
        counter = MotivoCounter(graph, MotivoConfig(k=4, seed=3))
        counter.build()
        table_before = counter.table
        u, v = next(iter(graph.edges()))
        stats = counter.update([("+", u, v)])
        assert stats["updates_applied"] == 0
        assert counter.table is table_before
        assert counter.graph is graph
        counter.close()


class TestEmptyUrnLifecycle:
    def test_delete_to_empty_and_revive(self):
        n, k = 14, 3
        graph = erdos_renyi(n, 20, rng=12)
        counter = MotivoCounter(graph, MotivoConfig(k=k, seed=2))
        counter.build()
        assert not counter.empty_urn

        removed = [("-", u, v) for u, v in graph.edges()]
        counter.update(removed)
        assert counter.graph.num_edges == 0
        assert counter.empty_urn
        estimates = counter.sample_naive(10)
        assert estimates.empty_urn
        assert estimates.counts == {}

        counter.update([("+", u, v) for _op, u, v in removed])
        assert not counter.empty_urn
        assert counter.graph.fingerprint() == graph.fingerprint()
        fresh = MotivoCounter(graph, MotivoConfig(k=k, seed=2))
        fresh.build()
        assert _digest(counter.table, k) == _digest(fresh.table, k)
        assert counter.sample_naive(50).counts == \
            fresh.sample_naive(50).counts
        counter.close()
        fresh.close()


class TestGatheredStoreRetention:
    """The sampling plane's snapshot-pinned cache across updates.

    On a sparse graph the urn keeps its gathered-cumulative store across
    ``rebind``: stale rows are read only relatively (segment
    differences), so they stay bit-exact outside the dirty neighborhood,
    and dirty vertices take the exact live path.  A batch whose dirty
    neighborhood exceeds a quarter of the vertices flushes instead.
    Either way samples must equal a fresh counter's at matched stream
    positions.
    """

    K = 5
    N = 600

    def _cycle_counter(self):
        edges = [(i, (i + 1) % self.N) for i in range(self.N)]
        graph = Graph.from_edges(edges, self.N)
        counter = MotivoCounter(graph, MotivoConfig(k=self.K, seed=17))
        counter.build()
        return graph, counter

    def test_store_survives_sparse_update(self):
        graph, counter = self._cycle_counter()
        counter.sample_naive(128)  # materialize gathered rows
        assert counter.urn._gath_slot is not None
        counter.update([("+", 0, self.N // 2)])
        assert counter.urn._gath_dirty is not None, "store was flushed"
        assert counter.urn._gath_graph is graph, (
            "store must stay pinned to its build-time snapshot"
        )

        fresh = MotivoCounter(counter.graph, MotivoConfig(k=self.K, seed=17))
        fresh.build()
        fresh.sample_naive(128)  # match the incremental counter's stream
        assert _rng_state(counter) == _rng_state(fresh)
        inc = counter.sample_naive(96)
        ref = fresh.sample_naive(96)
        assert inc.counts == ref.counts
        assert inc.hits == ref.hits
        assert _rng_state(counter) == _rng_state(fresh)
        counter.close()
        fresh.close()

    def test_dirty_set_accumulates_across_updates(self):
        _graph, counter = self._cycle_counter()
        counter.sample_naive(128)
        counter.update([("+", 0, self.N // 2)])
        first = int(counter.urn._gath_dirty.sum())
        counter.update([("+", 100, 400)])
        assert counter.urn._gath_dirty is not None
        assert int(counter.urn._gath_dirty.sum()) >= first

        fresh = MotivoCounter(counter.graph, MotivoConfig(k=self.K, seed=17))
        fresh.build()
        fresh.sample_naive(128)
        assert counter.sample_naive(96).counts == \
            fresh.sample_naive(96).counts
        assert _rng_state(counter) == _rng_state(fresh)
        counter.close()
        fresh.close()

    def test_wide_batch_flushes_store(self):
        _graph, counter = self._cycle_counter()
        counter.sample_naive(128)
        rng = np.random.default_rng(44)
        batch = _mixed_batch(rng, counter.graph, inserts=80, deletes=0)
        counter.update(batch)
        assert counter.urn._gath_dirty is None, (
            "a whole-graph dirty neighborhood must flush, not accumulate"
        )
        fresh = MotivoCounter(counter.graph, MotivoConfig(k=self.K, seed=17))
        fresh.build()
        fresh.sample_naive(128)
        assert counter.sample_naive(96).counts == \
            fresh.sample_naive(96).counts
        assert _rng_state(counter) == _rng_state(fresh)
        counter.close()
        fresh.close()


class TestDeltaArtifacts:
    def _graph(self):
        return erdos_renyi(30, 70, rng=4)

    def test_save_load_roundtrip(self, tmp_path):
        manifest = save_table_delta(
            str(tmp_path / "d0"), [("+", 1, 2), ("-", 3, 4)],
            "sha256:p", "sha256:c", stats={"rows_touched": 5},
        )
        assert manifest["num_updates"] == 2
        ops, loaded = load_table_delta(str(tmp_path / "d0"))
        assert loaded["parent_fingerprint"] == "sha256:p"
        assert loaded["child_fingerprint"] == "sha256:c"
        assert loaded["stats"]["rows_touched"] == 5
        assert ops.shape == (2, 3)
        assert ops.dtype == np.int64

    def test_tampered_blob_rejected(self, tmp_path):
        save_table_delta(
            str(tmp_path / "d0"), [("+", 1, 2)], "sha256:p", "sha256:c"
        )
        blob = tmp_path / "d0" / "updates.npy"
        blob.write_bytes(blob.read_bytes()[:-1] + b"\x01")
        with pytest.raises(ArtifactError):
            load_table_delta(str(tmp_path / "d0"))

    def test_compaction_folds_delta_chain(self, tmp_path):
        graph = self._graph()
        counter = MotivoCounter(
            graph,
            MotivoConfig(
                k=4, seed=13, delta_log_dir=str(tmp_path / "deltas")
            ),
        )
        counter.build()
        counter.save_artifact(str(tmp_path / "base"))
        rng = np.random.default_rng(77)
        counter.update(_mixed_batch(rng, counter.graph, 3, 2))
        counter.update(_mixed_batch(rng, counter.graph, 2, 3))
        deltas = [str(tmp_path / "deltas" / f"delta-{i:06d}")
                  for i in range(2)]

        artifact, final_graph = compact_table(
            str(tmp_path / "base"), deltas, str(tmp_path / "out"), graph
        )
        assert final_graph.fingerprint() == counter.graph.fingerprint()
        assert _digest(artifact.table, 4) == _digest(counter.table, 4)
        lineage = artifact.manifest["lineage"]
        assert lineage["parent_fingerprint"] == graph.fingerprint()
        assert lineage["deltas_compacted"] == 2

        reopened = open_table(str(tmp_path / "out"), final_graph)
        assert _digest(reopened.table, 4) == _digest(counter.table, 4)
        counter.close()

    def test_compaction_rejects_out_of_order_chain(self, tmp_path):
        graph = self._graph()
        counter = MotivoCounter(
            graph,
            MotivoConfig(
                k=4, seed=13, delta_log_dir=str(tmp_path / "deltas")
            ),
        )
        counter.build()
        counter.save_artifact(str(tmp_path / "base"))
        rng = np.random.default_rng(78)
        counter.update(_mixed_batch(rng, counter.graph, 3, 2))
        counter.update(_mixed_batch(rng, counter.graph, 2, 3))
        counter.close()
        deltas = [str(tmp_path / "deltas" / f"delta-{i:06d}")
                  for i in (1, 0)]
        with pytest.raises(ArtifactError):
            compact_table(
                str(tmp_path / "base"), deltas, str(tmp_path / "out"),
                graph,
            )

    def test_update_lineage_recorded_in_saved_artifact(self, tmp_path):
        graph = self._graph()
        counter = MotivoCounter(graph, MotivoConfig(k=4, seed=13))
        counter.build()
        parent = graph.fingerprint()
        counter.update([("+", 0, 1)] if not graph.has_edge(0, 1)
                       else [("-", 0, 1)])
        counter.update([("+", 2, 5)] if not graph.has_edge(2, 5)
                       else [("-", 2, 5)])
        artifact = counter.save_artifact(str(tmp_path / "art"))
        lineage = artifact.manifest["lineage"]
        assert lineage["parent_fingerprint"] == parent
        assert lineage["update_batches"] == 2
        assert lineage["updates_applied"] == 2
        counter.close()


class TestServeUpdate:
    @pytest.fixture()
    def served(self, tmp_path):
        host = erdos_renyi(40, 100, rng=5)
        root = str(tmp_path / "cache")
        counter = MotivoCounter(
            host, MotivoConfig(k=4, seed=11, artifact_dir=root)
        )
        counter.build()
        counter.close()
        with SamplingService(root) as service:
            service.add_graph(host)
            yield host, service

    def test_service_update_rewrites_artifact(self, served):
        host, service = served
        before = service.count(samples=100, session="a", seed=3)
        absent = [
            (a, b) for a in range(10) for b in range(a + 1, 40)
            if not host.has_edge(a, b)
        ][:2]
        stats = service.update([["+", u, v] for u, v in absent])
        assert stats["updates_applied"] == 2
        assert stats["mode"] == "incremental"
        assert stats["fingerprint"] != host.fingerprint()
        after = service.count(samples=100, session="a", seed=3)
        assert after.estimates.counts  # served from the updated table
        assert before.key == after.key

    def test_http_update_endpoint(self, served):
        host, service = served
        absent = next(
            (a, b) for a in range(40) for b in range(a + 1, 40)
            if not host.has_edge(a, b)
        )
        server = serve_http(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            hostname, port = server.server_address[:2]
            url = f"http://{hostname}:{port}/update"

            def post(payload):
                request = urllib.request.Request(
                    url, data=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as response:
                    return json.load(response)

            body = post({"updates": [["+", *absent], ["-", *absent]]})
            assert body["updates_applied"] == 0
            body = post({"updates": [["+", *absent]]})
            assert body["updates_applied"] == 1
            assert body["rows_touched"] > 0
            with pytest.raises(urllib.error.HTTPError) as info:
                post({"updates": "nope"})
            assert info.value.code == 400
        finally:
            server.shutdown()
            server.server_close()


class TestCLIUpdate:
    def test_update_command_applies_and_is_idempotent(
        self, tmp_path, capsys
    ):
        graph = erdos_renyi(25, 60, rng=9)
        graph_path = tmp_path / "graph.txt"
        graph_path.write_text(
            "".join(f"{u} {v}\n" for u, v in graph.edges())
        )
        artifact = tmp_path / "artifact"
        assert cli_main([
            "build", str(graph_path), "--k", "3", "--seed", "5",
            "-o", str(artifact),
        ]) == 0
        capsys.readouterr()

        absent = next(
            (a, b) for a in range(25) for b in range(a + 1, 25)
            if not graph.has_edge(a, b)
        )
        present = next(iter(graph.edges()))
        updates_path = tmp_path / "updates.txt"
        updates_path.write_text(
            "# churn\n"
            f"+ {absent[0]} {absent[1]}\n"
            f"- {present[0]} {present[1]}\n"
        )
        assert cli_main([
            "update", str(artifact), "--updates", str(updates_path),
        ]) == 0
        stats = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert stats["updates_applied"] == 2
        assert stats["mode"] == "incremental"

        # The manifest now records the updated graph; replaying the
        # same file is a pure no-op (insert present, delete absent).
        assert cli_main([
            "update", str(artifact), "--updates", str(updates_path),
        ]) == 0
        stats = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert stats["updates_applied"] == 0

        manifest = load_manifest(str(artifact))
        new_graph, _ = graph.apply_updates(
            [("+", *absent), ("-", *present)]
        )
        assert manifest["graph"]["fingerprint"] == new_graph.fingerprint()
