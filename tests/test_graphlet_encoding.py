"""Tests for the packed graphlet adjacency encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphletError
from repro.graphlets.encoding import (
    adjacency_sets,
    decode_graphlet,
    encode_adjacency,
    encode_edges,
    graphlet_degrees,
    graphlet_edge_count,
    is_connected_graphlet,
    pair_index,
    relabel,
)


@st.composite
def graphlet_bits(draw, k=5):
    return draw(st.integers(min_value=0, max_value=(1 << (k * (k - 1) // 2)) - 1))


class TestPairIndex:
    @pytest.mark.parametrize("k", [2, 3, 5, 8, 16])
    def test_bijection(self, k):
        seen = set()
        for i in range(k):
            for j in range(i + 1, k):
                idx = pair_index(i, j, k)
                assert 0 <= idx < k * (k - 1) // 2
                seen.add(idx)
        assert len(seen) == k * (k - 1) // 2

    def test_first_pair_is_bit_zero(self):
        assert pair_index(0, 1, 5) == 0

    def test_paper_120_bit_bound(self):
        # k=16 fits in 120 bits, as in §3.3.
        assert pair_index(14, 15, 16) == 119

    def test_rejects_bad_pairs(self):
        with pytest.raises(GraphletError):
            pair_index(2, 2, 5)
        with pytest.raises(GraphletError):
            pair_index(3, 1, 5)
        with pytest.raises(GraphletError):
            pair_index(0, 5, 5)


class TestEncodeDecode:
    def test_edges_round_trip(self):
        edges = [(0, 1), (1, 2), (0, 3)]
        bits = encode_edges(edges, 4)
        assert sorted(decode_graphlet(bits, 4)) == sorted(edges)

    def test_unordered_endpoints(self):
        assert encode_edges([(2, 0)], 3) == encode_edges([(0, 2)], 3)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphletError):
            encode_edges([(1, 1)], 3)

    def test_adjacency_matrix(self):
        matrix = np.zeros((3, 3), dtype=int)
        matrix[0, 1] = matrix[1, 0] = 1
        assert encode_adjacency(matrix, 3) == encode_edges([(0, 1)], 3)

    def test_adjacency_shape_check(self):
        with pytest.raises(GraphletError):
            encode_adjacency(np.zeros((2, 3)), 3)

    @given(graphlet_bits())
    def test_decode_encode_identity(self, bits):
        assert encode_edges(decode_graphlet(bits, 5), 5) == bits

    @given(graphlet_bits())
    def test_degrees_sum(self, bits):
        assert sum(graphlet_degrees(bits, 5)) == 2 * graphlet_edge_count(bits)

    @given(graphlet_bits())
    def test_adjacency_sets_symmetric(self, bits):
        adjacency = adjacency_sets(bits, 5)
        for i in range(5):
            for j in adjacency[i]:
                assert i in adjacency[j]


class TestConnectivity:
    def test_known_cases(self):
        path = encode_edges([(0, 1), (1, 2)], 3)
        assert is_connected_graphlet(path, 3)
        just_edge = encode_edges([(0, 1)], 3)
        assert not is_connected_graphlet(just_edge, 3)
        assert is_connected_graphlet(0, 1)
        assert not is_connected_graphlet(0, 2)


class TestRelabel:
    def test_identity(self):
        bits = encode_edges([(0, 1), (2, 3)], 4)
        assert relabel(bits, 4, [0, 1, 2, 3]) == bits

    def test_swap(self):
        bits = encode_edges([(0, 1)], 3)
        swapped = relabel(bits, 3, [2, 1, 0])
        assert swapped == encode_edges([(1, 2)], 3)

    def test_rejects_non_permutation(self):
        with pytest.raises(GraphletError):
            relabel(0, 3, [0, 0, 1])

    @given(graphlet_bits(), st.permutations(list(range(5))))
    def test_preserves_edge_count(self, bits, permutation):
        assert graphlet_edge_count(relabel(bits, 5, permutation)) == (
            graphlet_edge_count(bits)
        )

    @given(graphlet_bits(), st.permutations(list(range(5))))
    def test_composition(self, bits, permutation):
        inverse = [0] * 5
        for position, target in enumerate(permutation):
            inverse[target] = position
        assert relabel(relabel(bits, 5, permutation), 5, inverse) == bits
