"""Tests for the vectorized build-up phase against exact references.

The strongest invariants in the library live here:

* the vectorized float DP equals the exact big-int CC baseline entry for
  entry on random graphs (several k, several colorings);
* the total treelet count equals the independent Kirchhoff-sum identity
  Σ_S σ(G[S]) over colorful subsets;
* 0-rooting keeps exactly the color-0 rows of the k-layer;
* spilled (greedy-flush + memmap) builds equal in-memory builds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BuildError
from repro.colorcoding.buildup import build_table
from repro.colorcoding.buildup_baseline import build_hash_table
from repro.colorcoding.coloring import ColoringScheme
from repro.exact.brute import brute_force_colorful_treelet_total
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.table.flush import SpillStore
from repro.treelets.encoding import getsize
from repro.util.instrument import Instrumentation


def assert_tables_equal(fast_table, hash_table, n):
    """The vectorized table must match the exact baseline everywhere."""
    reference = hash_table.to_encoding_dict()
    for (encoding, mask), per_vertex in reference.items():
        layer = fast_table.layer(getsize(encoding))
        row = layer.counts_for(encoding, mask)
        for v, expected in per_vertex.items():
            got = 0.0 if row is None else float(row[v])
            assert got == pytest.approx(expected, rel=1e-9), (
                encoding, mask, v,
            )
    # And the fast table must not contain extras.
    for h in range(1, fast_table.k + 1):
        layer = fast_table.layer(h)
        for row_index, key in enumerate(layer.keys):
            values = layer.counts[row_index]
            for v in np.nonzero(values)[0]:
                assert reference.get(key, {}).get(int(v), 0) == pytest.approx(
                    float(values[v]), rel=1e-9
                )


class TestAgainstExactBaseline:
    @pytest.mark.parametrize(
        "n,m,k,seed",
        [
            (18, 30, 3, 0),
            (18, 40, 4, 1),
            (16, 36, 5, 2),
            (25, 45, 4, 3),
        ],
    )
    def test_random_graphs(self, n, m, k, seed):
        graph = erdos_renyi(n, m, rng=seed)
        coloring = ColoringScheme.uniform(n, k, rng=seed + 100)
        fast = build_table(graph, coloring, zero_rooting=False)
        slow = build_hash_table(graph, coloring, zero_rooting=False)
        assert_tables_equal(fast, slow, n)

    def test_biased_coloring_agrees_too(self):
        graph = erdos_renyi(20, 40, rng=5)
        coloring = ColoringScheme.biased(20, 4, lam=0.2, rng=6)
        fast = build_table(graph, coloring, zero_rooting=False)
        slow = build_hash_table(graph, coloring, zero_rooting=False)
        assert_tables_equal(fast, slow, 20)


class TestSuccinctPairVariant:
    """CC's algorithm over succinct words (the Figure 2 middle point)."""

    @pytest.mark.parametrize("seed,k", [(0, 3), (1, 4), (2, 5)])
    def test_matches_pointer_baseline(self, seed, k):
        from repro.colorcoding.buildup_baseline import build_succinct_pair_table

        graph = erdos_renyi(16, 34, rng=seed)
        coloring = ColoringScheme.uniform(16, k, rng=seed + 60)
        pointer = build_hash_table(graph, coloring).to_encoding_dict()
        succinct = build_succinct_pair_table(graph, coloring)
        assert succinct == pointer

    def test_counts_check_and_merge_ops(self):
        from repro.colorcoding.buildup_baseline import build_succinct_pair_table

        graph = erdos_renyi(12, 24, rng=3)
        coloring = ColoringScheme.uniform(12, 3, rng=4)
        inst = Instrumentation()
        build_succinct_pair_table(graph, coloring, instrumentation=inst)
        assert inst["check_and_merge"] > 0
        assert inst.timings["check_and_merge"] > 0


class TestKnownGraphs:
    def test_path_graph_path_counts(self):
        """On P_n with all-distinct colors every subpath is colorful."""
        n, k = 4, 4
        graph = path_graph(n)
        coloring = ColoringScheme.fixed(list(range(n)), k=k)
        table = build_table(graph, coloring, zero_rooting=False)
        # P4 contains exactly one spanning path; rooted copies at the two
        # ends use the end-rooted treelet shape.
        total = table.root_weights().sum()
        # Each of the 1 spanning trees is counted once per vertex (4 roots).
        assert total == pytest.approx(4.0)

    def test_star_graph(self):
        k = 4
        graph = star_graph(3)  # K_{1,3} on 4 vertices
        coloring = ColoringScheme.fixed([0, 1, 2, 3], k=k)
        table = build_table(graph, coloring, zero_rooting=False)
        assert table.root_weights().sum() == pytest.approx(4.0)

    def test_complete_graph_treelet_total(self):
        """On K_k with distinct colors: total k-treelet copies = k^{k-2}
        spanning trees, each rooted at each of the k vertices."""
        for k in (3, 4, 5):
            graph = complete_graph(k)
            coloring = ColoringScheme.fixed(list(range(k)), k=k)
            table = build_table(graph, coloring, zero_rooting=False)
            assert table.root_weights().sum() == pytest.approx(
                k ** (k - 2) * k
            )


class TestTreeletTotalIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_total_matches_kirchhoff_sum(self, seed):
        """Σ_v occ(v) (0-rooted) == Σ_{colorful S} σ(G[S])."""
        graph = erdos_renyi(16, 34, rng=seed)
        k = 4
        coloring = ColoringScheme.uniform(16, k, rng=seed + 50)
        table = build_table(graph, coloring, zero_rooting=True)
        expected = brute_force_colorful_treelet_total(graph, k, coloring)
        assert table.root_weights().sum() == pytest.approx(expected)

    def test_cycle_exact(self):
        """C_n, k = n, distinct colors: n spanning trees (paths), 0-rooted
        counts each exactly once."""
        n = 6
        graph = cycle_graph(n)
        coloring = ColoringScheme.fixed(list(range(n)), k=n)
        table = build_table(graph, coloring, zero_rooting=True)
        assert table.root_weights().sum() == pytest.approx(n)


class TestZeroRooting:
    def test_k_layer_restricted_to_color_zero(self):
        graph = erdos_renyi(20, 45, rng=7)
        k = 4
        coloring = ColoringScheme.uniform(20, k, rng=8)
        rooted = build_table(graph, coloring, zero_rooting=True)
        weights = rooted.root_weights()
        non_zero_color = coloring.colors != 0
        assert np.all(weights[non_zero_color] == 0)

    def test_total_reduced_by_factor_k(self):
        """Every copy is counted k times without 0-rooting, once with."""
        graph = erdos_renyi(20, 45, rng=9)
        k = 4
        coloring = ColoringScheme.uniform(20, k, rng=10)
        rooted = build_table(graph, coloring, zero_rooting=True)
        unrooted = build_table(graph, coloring, zero_rooting=False)
        assert unrooted.root_weights().sum() == pytest.approx(
            k * rooted.root_weights().sum()
        )

    def test_smaller_layers_identical(self):
        graph = erdos_renyi(15, 30, rng=11)
        coloring = ColoringScheme.uniform(15, 4, rng=12)
        rooted = build_table(graph, coloring, zero_rooting=True)
        unrooted = build_table(graph, coloring, zero_rooting=False)
        for h in (1, 2, 3):
            a, b = rooted.layer(h), unrooted.layer(h)
            assert a.keys == b.keys
            assert np.allclose(a.counts, b.counts)


class TestSpill:
    def test_spilled_build_equals_in_memory(self, tmp_path):
        graph = erdos_renyi(20, 45, rng=13)
        coloring = ColoringScheme.uniform(20, 4, rng=14)
        plain = build_table(graph, coloring)
        store = SpillStore(str(tmp_path / "spill"))
        spilled = build_table(graph, coloring, spill=store)
        for h in range(1, 5):
            a, b = plain.layer(h), spilled.layer(h)
            assert a.keys == b.keys
            assert np.allclose(a.counts, np.asarray(b.counts))
        # Counts are memory-mapped after the sort pass.
        assert isinstance(spilled.layer(4).counts, np.memmap)


class TestValidation:
    def test_k_too_small(self):
        graph = path_graph(3)
        with pytest.raises(BuildError):
            build_table(graph, ColoringScheme.fixed([0, 0, 0], k=1))

    def test_vertex_count_mismatch(self):
        graph = path_graph(3)
        with pytest.raises(BuildError):
            build_table(graph, ColoringScheme.uniform(5, 3, rng=0))

    def test_registry_mismatch(self):
        from repro.treelets.registry import TreeletRegistry

        graph = path_graph(3)
        with pytest.raises(BuildError):
            build_table(
                graph,
                ColoringScheme.uniform(3, 3, rng=0),
                registry=TreeletRegistry(4),
            )

    def test_instrumentation_counts_kernels(self):
        graph = erdos_renyi(15, 30, rng=15)
        coloring = ColoringScheme.uniform(15, 4, rng=16)
        inst = Instrumentation()
        build_table(graph, coloring, instrumentation=inst)
        assert inst["merge_ops"] > 0
        assert inst.timings["buildup"] > 0
