"""Tests for the Theorem 3 bounds helpers and non-induced conversion."""

from __future__ import annotations

import pytest

from repro.errors import SamplingError
from repro.graph.generators import erdos_renyi, star_graph
from repro.sampling.bounds import (
    colorings_for_guarantee,
    minimum_count_for_guarantee,
    suggest_lambda,
    theorem3_failure_probability,
)
from repro.util.combinatorics import biased_colorful_probability


class TestTheorem3:
    def test_monotone_in_count(self):
        a = theorem3_failure_probability(0.2, 4, 1e6, 10)
        b = theorem3_failure_probability(0.2, 4, 1e8, 10)
        assert b < a

    def test_monotone_in_degree(self):
        a = theorem3_failure_probability(0.2, 4, 1e7, 10)
        b = theorem3_failure_probability(0.2, 4, 1e7, 40)
        assert a < b

    def test_biased_coloring_weakens_bound(self):
        uniform = theorem3_failure_probability(0.2, 4, 1e7, 10)
        biased = theorem3_failure_probability(
            0.2, 4, 1e7, 10,
            colorful_p=biased_colorful_probability(4, 0.05),
        )
        assert uniform < biased

    def test_capped_at_one(self):
        assert theorem3_failure_probability(0.01, 5, 10, 1000) == 1.0

    def test_validation(self):
        with pytest.raises(SamplingError):
            theorem3_failure_probability(0.0, 5, 1e6, 50)
        with pytest.raises(SamplingError):
            theorem3_failure_probability(0.1, 1, 1e6, 50)
        with pytest.raises(SamplingError):
            theorem3_failure_probability(0.1, 5, -1, 50)


class TestGuaranteeHelpers:
    def test_single_coloring_when_bound_strong(self):
        assert colorings_for_guarantee(0.2, 0.1, 4, 1e9, 20) == 1

    def test_more_colorings_for_tighter_delta(self):
        few = colorings_for_guarantee(0.15, 0.2, 4, 2e5, 10)
        many = colorings_for_guarantee(0.15, 1e-9, 4, 2e5, 10)
        assert many > few >= 1

    def test_vacuous_bound_rejected(self):
        with pytest.raises(SamplingError, match="vacuous"):
            colorings_for_guarantee(0.01, 0.1, 5, 10, 1000)

    def test_minimum_count_inverts_bound(self):
        epsilon, delta, k, degree = 0.1, 0.05, 5, 50
        threshold = minimum_count_for_guarantee(epsilon, delta, k, degree)
        at_threshold = theorem3_failure_probability(
            epsilon, k, threshold, degree
        )
        assert at_threshold == pytest.approx(delta, rel=1e-6)

    def test_minimum_count_validation(self):
        with pytest.raises(SamplingError):
            minimum_count_for_guarantee(0.1, 1.5, 5, 50)


class TestSuggestLambda:
    def test_returns_valid_lambda(self):
        graph = erdos_renyi(300, 900, rng=1)
        lam = suggest_lambda(graph, 5, rng=2)
        assert 0 < lam <= 1.0 / 4

    def test_sparser_probe_gives_smaller_lambda(self):
        """A denser graph reaches the positive-count threshold earlier."""
        sparse = star_graph(200)  # treelet-poor
        dense = erdos_renyi(201, 3000, rng=3)
        lam_sparse = suggest_lambda(sparse, 4, rng=4)
        lam_dense = suggest_lambda(dense, 4, rng=5)
        assert lam_dense <= lam_sparse

    def test_empty_graph_rejected(self):
        from repro.graph.graph import Graph

        with pytest.raises(SamplingError):
            suggest_lambda(Graph.empty(0), 4)

    def test_suggested_lambda_builds_nonempty_urn(self):
        from repro.colorcoding.buildup import build_table
        from repro.colorcoding.coloring import ColoringScheme

        graph = erdos_renyi(400, 1600, rng=6)
        k = 4
        lam = suggest_lambda(graph, k, rng=7)
        coloring = ColoringScheme.biased(graph.num_vertices, k, lam, rng=8)
        table = build_table(graph, coloring)
        assert table.root_weights().sum() > 0


class TestNonInducedConversion:
    def test_overlap_matrix_diagonal(self):
        from repro.graphlets.enumerate import enumerate_graphlets
        from repro.graphlets.noninduced import overlap_matrix

        for k in (3, 4, 5):
            matrix = overlap_matrix(k)
            graphlets = enumerate_graphlets(k)
            for i in range(len(graphlets)):
                assert matrix[i][i] == 1

    def test_automorphisms_known(self):
        from repro.graphlets.enumerate import (
            clique_graphlet,
            cycle_graphlet,
            path_graphlet,
            star_graphlet,
        )
        from repro.graphlets.noninduced import automorphism_count
        from math import factorial

        k = 5
        assert automorphism_count(clique_graphlet(k), k) == factorial(k)
        assert automorphism_count(cycle_graphlet(k), k) == 2 * k
        assert automorphism_count(path_graphlet(k), k) == 2
        assert automorphism_count(star_graphlet(k), k) == factorial(k - 1)

    def test_path_inside_clique(self):
        """K_k contains k!/2 spanning paths."""
        from math import factorial

        from repro.graphlets.enumerate import clique_graphlet, path_graphlet
        from repro.graphlets.noninduced import occurrence_count

        for k in (4, 5):
            assert occurrence_count(
                path_graphlet(k), clique_graphlet(k), k
            ) == factorial(k) // 2

    def test_round_trip(self):
        """induced -> noninduced -> induced is the identity."""
        from repro.graphlets.enumerate import enumerate_graphlets
        from repro.graphlets.noninduced import induced_counts, noninduced_counts

        k = 4
        graphlets = enumerate_graphlets(k)
        induced = {bits: float(i + 1) for i, bits in enumerate(graphlets)}
        back = induced_counts(noninduced_counts(induced, k), k)
        for bits, value in induced.items():
            assert back.get(bits, 0.0) == pytest.approx(value)

    def test_against_exact_counts(self):
        """Non-induced counts derived from induced ESU counts must match
        direct non-induced counting (via networkx as an oracle)."""
        import networkx as nx
        from itertools import combinations

        from repro.exact.esu import exact_counts
        from repro.graphlets.enumerate import path_graphlet
        from repro.graphlets.noninduced import noninduced_counts

        graph = erdos_renyi(12, 26, rng=9)
        k = 4
        induced = exact_counts(graph, k)
        derived = noninduced_counts(induced, k)

        # Oracle: enumerate all 4-vertex subsets and count their spanning
        # P4 subgraphs via networkx monomorphisms.
        g = nx.Graph(list(graph.edges()))
        p4 = nx.path_graph(k)
        expected_p4 = 0
        for nodes in combinations(range(graph.num_vertices), k):
            sub = g.subgraph(nodes)
            gm = nx.algorithms.isomorphism.GraphMatcher(sub, p4)
            copies = sum(1 for _ in gm.subgraph_monomorphisms_iter())
            expected_p4 += copies // 2  # |Aut(P4)| = 2

        assert derived.get(path_graphlet(k), 0) == pytest.approx(expected_p4)


class TestTheorem2:
    def test_additive_bound_shape(self):
        from repro.sampling.bounds import theorem2_failure_probability

        # Decreasing in total count, increasing in k (g^{1/k} shrinks).
        a = theorem2_failure_probability(0.1, 4, 1e8)
        b = theorem2_failure_probability(0.1, 4, 1e12)
        assert b < a
        c = theorem2_failure_probability(0.1, 8, 1e12)
        assert c > b

    def test_validation(self):
        from repro.sampling.bounds import theorem2_failure_probability

        with pytest.raises(SamplingError):
            theorem2_failure_probability(0.0, 4, 1e6)
        with pytest.raises(SamplingError):
            theorem2_failure_probability(0.1, 1, 1e6)
