"""Tests for the AGS covering program (Appendix C / Theorem 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.urn import TreeletUrn
from repro.exact.esu import exact_colorful_counts
from repro.graph.generators import erdos_renyi, star_heavy
from repro.graphlets.spanning import spanning_tree_shape_counts
from repro.sampling.setcover import (
    CoverInstance,
    coverage_matrix,
    expected_coverage,
    greedy_cover,
    lp_optimal_cover,
)


def real_instance(graph, k, seed):
    """Build a covering instance from exact quantities."""
    coloring = ColoringScheme.uniform(graph.num_vertices, k, rng=seed)
    table = build_table(graph, coloring)
    urn = TreeletUrn(graph, table, coloring)
    counts = exact_colorful_counts(graph, k, coloring)
    sigma = {
        bits: spanning_tree_shape_counts(bits, k) for bits in counts
    }
    totals = {
        shape: urn.shape_total(shape)
        for shape in urn.registry.free_shapes
    }
    return coverage_matrix(counts, sigma, totals), urn, counts


class TestCoverageMatrix:
    def test_columns_are_probabilities(self):
        graph = erdos_renyi(20, 45, rng=80)
        instance, _urn, _counts = real_instance(graph, 4, seed=81)
        assert np.all(instance.matrix >= 0)
        assert np.all(instance.matrix <= 1 + 1e-9)

    def test_row_sums_bounded_by_one(self):
        """Σ_i a_ji ≤ 1: one sample spans exactly one graphlet."""
        graph = erdos_renyi(20, 45, rng=82)
        instance, _urn, _counts = real_instance(graph, 4, seed=83)
        assert np.all(instance.matrix.sum(axis=1) <= 1 + 1e-9)

    def test_row_sums_equal_one_exactly(self):
        """Every treelet copy spans exactly one induced graphlet, so each
        row of A sums to exactly 1 when counts are exact."""
        graph = erdos_renyi(18, 40, rng=84)
        instance, _urn, _counts = real_instance(graph, 4, seed=85)
        assert np.allclose(instance.matrix.sum(axis=1), 1.0)

    def test_empty_rejected(self):
        with pytest.raises(SamplingError):
            coverage_matrix({}, {}, {})

    def test_infeasible_rejected(self):
        with pytest.raises(SamplingError, match="infeasible"):
            coverage_matrix(
                {1: 5.0}, {1: {99: 1}}, {42: 10.0}
            )


class TestSolvers:
    @pytest.fixture(scope="class")
    def instance(self):
        graph = erdos_renyi(20, 45, rng=86)
        inst, _urn, _counts = real_instance(graph, 4, seed=87)
        return inst

    def test_lp_feasible(self, instance):
        x, total = lp_optimal_cover(instance, cover_target=100)
        coverage = expected_coverage(instance, x)
        assert np.all(coverage >= 100 - 1e-6)
        assert total == pytest.approx(x.sum())

    def test_greedy_feasible(self, instance):
        x, total = greedy_cover(instance, cover_target=100)
        coverage = expected_coverage(instance, x)
        assert np.all(coverage >= 100 - 1e-6)
        assert total == pytest.approx(x.sum())

    def test_greedy_within_log_factor(self, instance):
        """Theorem 6 / Lemma 2: greedy ≤ O(ln s) × optimal."""
        _x_opt, optimal = lp_optimal_cover(instance, cover_target=100)
        _x_greedy, greedy = greedy_cover(instance, cover_target=100)
        s = instance.num_graphlets
        assert greedy >= optimal - 1e-6  # LP is a true lower bound
        assert greedy <= (2 * np.log(2 * s) + 2) * optimal + s

    def test_scaling_in_target(self, instance):
        """Doubling c̄ roughly doubles both solutions."""
        _x, opt_100 = lp_optimal_cover(instance, cover_target=100)
        _x, opt_200 = lp_optimal_cover(instance, cover_target=200)
        assert opt_200 == pytest.approx(2 * opt_100, rel=1e-6)

    def test_bad_targets(self, instance):
        with pytest.raises(SamplingError):
            lp_optimal_cover(instance, 0)
        with pytest.raises(SamplingError):
            greedy_cover(instance, -5)

    def test_bad_allocation_shape(self, instance):
        with pytest.raises(SamplingError):
            expected_coverage(instance, [1.0])


class TestSkewedInstance:
    def test_greedy_diversifies_on_star_graph(self):
        """On a star-dominated graph, covering the rare graphlets forces
        the greedy away from the star shape — the AGS insight."""
        graph = star_heavy(8, 60, bridge_edges=4, rng=88)
        instance, urn, counts = real_instance(graph, 4, seed=89)
        x, _total = greedy_cover(instance, cover_target=50)
        used_shapes = [
            shape for shape, calls in zip(instance.shapes, x) if calls > 0
        ]
        assert len(used_shapes) >= 2

    def test_uniform_sampling_is_far_from_optimal(self):
        """The Θ(1/rarity) cost of naive sampling vs the LP optimum."""
        graph = star_heavy(8, 60, bridge_edges=4, rng=90)
        instance, urn, counts = real_instance(graph, 4, seed=91)
        _x, optimal = lp_optimal_cover(instance, cover_target=50)

        # Naive sampling needs cbar / min_i Pr[hit H_i] draws where the
        # hit probability uses the *global* urn.
        total_treelets = urn.total_treelets
        from repro.graphlets.spanning import spanning_tree_count

        worst = min(
            counts[bits] * spanning_tree_count(bits, 4) / total_treelets
            for bits in counts
            if counts[bits] > 0
        )
        naive_needed = 50 / worst
        assert naive_needed > 3 * optimal
