"""Tests for uniform and biased colorings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ColorError
from repro.colorcoding.coloring import ColoringScheme
from repro.util.combinatorics import colorful_probability


class TestUniform:
    def test_color_range(self):
        scheme = ColoringScheme.uniform(500, 5, rng=1)
        assert scheme.colors.min() >= 0
        assert scheme.colors.max() < 5
        assert scheme.num_vertices == 500

    def test_roughly_balanced(self):
        scheme = ColoringScheme.uniform(10_000, 4, rng=2)
        histogram = scheme.color_histogram()
        assert histogram.sum() == 10_000
        assert np.all(histogram > 2200)

    def test_colorful_probability(self):
        scheme = ColoringScheme.uniform(10, 5, rng=3)
        assert scheme.colorful_probability() == pytest.approx(
            colorful_probability(5)
        )

    def test_deterministic(self):
        a = ColoringScheme.uniform(100, 4, rng=9)
        b = ColoringScheme.uniform(100, 4, rng=9)
        assert np.array_equal(a.colors, b.colors)

    def test_k_validation(self):
        with pytest.raises(ColorError):
            ColoringScheme.uniform(10, 0)


class TestBiased:
    def test_color_zero_is_heavy(self):
        scheme = ColoringScheme.biased(20_000, 5, lam=0.02, rng=4)
        histogram = scheme.color_histogram()
        # Expected: color 0 at 92%, others at 2% each.
        assert histogram[0] > 17_000
        assert np.all(histogram[1:] < 1000)

    def test_lambda_bounds(self):
        with pytest.raises(ColorError):
            ColoringScheme.biased(10, 5, lam=0.0)
        with pytest.raises(ColorError):
            ColoringScheme.biased(10, 5, lam=0.3)
        with pytest.raises(ColorError):
            ColoringScheme.biased(10, 1, lam=0.1)

    def test_colorful_probability_below_uniform(self):
        biased = ColoringScheme.biased(10, 5, lam=0.05, rng=5)
        assert biased.colorful_probability() < colorful_probability(5)

    def test_lambda_at_uniform_matches(self):
        scheme = ColoringScheme.biased(10, 4, lam=0.25, rng=6)
        assert scheme.colorful_probability() == pytest.approx(
            colorful_probability(4)
        )


class TestFixed:
    def test_wraps_explicit_colors(self):
        scheme = ColoringScheme.fixed([0, 1, 2, 0], k=3)
        assert scheme.colors.tolist() == [0, 1, 2, 0]

    def test_bounds_checked(self):
        with pytest.raises(ColorError):
            ColoringScheme.fixed([0, 3], k=3)
        with pytest.raises(ColorError):
            ColoringScheme.fixed([-1], k=3)


class TestIndicator:
    def test_indicator(self):
        scheme = ColoringScheme.fixed([0, 1, 1, 2], k=3)
        assert scheme.indicator(1).tolist() == [0.0, 1.0, 1.0, 0.0]

    def test_indicator_bounds(self):
        scheme = ColoringScheme.fixed([0], k=2)
        with pytest.raises(ColorError):
            scheme.indicator(2)
