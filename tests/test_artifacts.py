"""Tests for the persistent table-artifact subsystem.

Covers the round-trip contract (bit-identical estimates from a reloaded
artifact vs. a fresh build, across every LayerStore backend and both
codecs), the typed error paths (corrupted manifest, graph-fingerprint
mismatch, format-version skew), the blob codecs, the content-addressed
cache, ensemble bundles, store lifecycle, and the CLI build/sample
commands.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.artifacts import (
    ArtifactCache,
    FORMAT_VERSION,
    load_manifest,
    open_ensemble,
    open_table,
    save_table,
)
from repro.artifacts.codec import (
    decode_counts_succinct,
    decode_varints,
    encode_counts_succinct,
    encode_varints,
    pack_keys,
    unpack_keys,
)
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.urn import TreeletUrn
from repro.engine import PipelineEngine
from repro.errors import ArtifactError, TableError
from repro.graph.generators import erdos_renyi
from repro.motivo import MotivoConfig, MotivoCounter
from repro.sampling.naive import naive_estimate
from repro.sampling.occurrences import GraphletClassifier
from repro.table.flush import SpillStore
from repro.table.layer_store import (
    InMemoryStore,
    ShardedStore,
    SpillLayerStore,
)


@pytest.fixture
def host():
    return erdos_renyi(40, 120, rng=5)


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------


class TestCodecs:
    def test_varint_round_trip(self, rng):
        for size in (0, 1, 7, 500):
            values = rng.integers(0, 2**50, size=size).astype(np.uint64)
            blob = encode_varints(values)
            assert np.array_equal(decode_varints(blob, size), values)

    def test_varint_boundaries(self):
        edges = np.array([0, 127, 128, 2**53, 2**63], dtype=np.uint64)
        assert np.array_equal(
            decode_varints(encode_varints(edges), edges.size), edges
        )

    def test_varint_count_mismatch_raises(self):
        blob = encode_varints(np.array([1, 2, 3], dtype=np.uint64))
        with pytest.raises(ArtifactError):
            decode_varints(blob, 2)
        with pytest.raises(ArtifactError):
            decode_varints(blob + b"\x80", 3)  # dangling continuation

    def test_key_packing_round_trip(self):
        keys = [(0, 1), (0, 2), (5, 3), (9, 31), (1023, 16)]
        assert unpack_keys(pack_keys(keys, 5), 5, len(keys)) == keys

    def test_key_packing_rejects_wide_masks(self):
        with pytest.raises(ArtifactError):
            pack_keys([(0, 1 << 6)], 5)

    def test_succinct_round_trip_with_empty_rows(self):
        matrix = np.zeros((6, 33))
        matrix[1, [0, 4, 32]] = [1.0, 9.0, float(2**40)]
        matrix[5, 7] = 3.0  # last row nonzero, rows 0/2/3/4 empty
        blob, sections = encode_counts_succinct(matrix)
        assert np.array_equal(
            decode_counts_succinct(blob, sections, 6, 33), matrix
        )

    def test_succinct_trailing_empty_rows(self):
        matrix = np.zeros((4, 5))
        matrix[0, 2] = 2.0
        blob, sections = encode_counts_succinct(matrix)
        assert np.array_equal(
            decode_counts_succinct(blob, sections, 4, 5), matrix
        )

    def test_succinct_rejects_fractional_counts(self):
        with pytest.raises(ArtifactError):
            encode_counts_succinct(np.array([[0.5]]))


# ----------------------------------------------------------------------
# Table round-trips across storage backends and codecs
# ----------------------------------------------------------------------


def _store_for(name, tmp_path):
    if name == "memory":
        return InMemoryStore()
    if name == "spill":
        return SpillLayerStore(SpillStore(str(tmp_path / "spill")))
    return ShardedStore(3, directory=str(tmp_path / "shards"))


class TestTableRoundTrip:
    @pytest.mark.parametrize("backend", ["memory", "spill", "sharded"])
    @pytest.mark.parametrize("codec", ["dense", "succinct"])
    def test_reloaded_estimates_bit_identical(
        self, host, tmp_path, backend, codec
    ):
        """The acceptance contract, per backend × codec: a table built
        through any LayerStore, saved, and reopened produces the exact
        floats a fresh in-memory urn produces."""
        coloring = ColoringScheme.uniform(host.num_vertices, 4, rng=17)
        store = _store_for(backend, tmp_path)
        table = build_table(host, coloring, store=store)
        fresh = naive_estimate(
            TreeletUrn(host, table, coloring),
            GraphletClassifier(host, 4),
            400,
            rng=99,
        )
        artifact_dir = str(tmp_path / "artifact")
        save_table(artifact_dir, table, coloring, host, codec=codec)
        reloaded = open_table(artifact_dir, host, verify=True)
        warm = naive_estimate(
            TreeletUrn(host, reloaded.table, reloaded.coloring),
            GraphletClassifier(host, 4),
            400,
            rng=99,
        )
        assert warm.counts == fresh.counts
        assert warm.hits == fresh.hits

    def test_dense_layers_reopen_memory_mapped(self, host, tmp_path):
        counter = MotivoCounter(host, MotivoConfig(k=4, seed=3))
        counter.build()
        counter.save_artifact(str(tmp_path / "a"))
        warm = MotivoCounter.from_artifact(host, str(tmp_path / "a"))
        for size in range(1, 5):
            assert isinstance(
                warm.urn.table.layer(size).counts, np.memmap
            )

    def test_facade_round_trip_naive_and_ags(self, host, tmp_path):
        cold = MotivoCounter(host, MotivoConfig(k=4, seed=7))
        cold.build()
        cold.save_artifact(str(tmp_path / "a"))
        warm = MotivoCounter.from_artifact(host, str(tmp_path / "a"))
        assert warm.sample_naive(500).counts == cold.sample_naive(500).counts

        cold_ags = MotivoCounter(host, MotivoConfig(k=4, seed=8))
        cold_ags.build()
        cold_ags.save_artifact(str(tmp_path / "b"), codec="succinct")
        warm_ags = MotivoCounter.from_artifact(host, str(tmp_path / "b"))
        assert (
            warm_ags.sample_ags(300, 50).estimates.counts
            == cold_ags.sample_ags(300, 50).estimates.counts
        )

    def test_build_params_restored(self, host, tmp_path):
        config = MotivoConfig(k=4, seed=5, buffer_threshold=123, batch_size=64)
        counter = MotivoCounter(host, config)
        counter.build()
        counter.save_artifact(str(tmp_path / "a"))
        warm = MotivoCounter.from_artifact(host, str(tmp_path / "a"))
        assert warm.config.k == 4
        assert warm.config.seed == 5
        assert warm.config.buffer_threshold == 123
        assert warm.config.batch_size == 64

    def test_from_artifact_without_build_params(self, host, tmp_path):
        """The manifest's top-level k is authoritative: artifacts saved
        without build params (e.g. via LayerStore.export_artifact) must
        not fall back to MotivoConfig defaults."""
        coloring = ColoringScheme.uniform(host.num_vertices, 4, rng=17)
        store = InMemoryStore()
        table = build_table(host, coloring, store=store)
        store.export_artifact(
            table, str(tmp_path / "a"), coloring=coloring, graph=host
        )
        warm = MotivoCounter.from_artifact(host, str(tmp_path / "a"))
        assert warm.config.k == 4
        assert warm.sample_naive(100).total > 0

    def test_resave_removes_stale_blobs(self, host, tmp_path):
        """Switching codecs in the same directory must not leave the old
        codec's count blobs behind."""
        counter = MotivoCounter(host, MotivoConfig(k=4, seed=3))
        counter.build()
        target = str(tmp_path / "a")
        counter.save_artifact(target, codec="dense")
        counter.save_artifact(target, codec="succinct")
        names = sorted(os.listdir(target))
        assert not any(name.endswith(".counts.npy") for name in names)
        reopened = open_table(target, host, verify=True)
        assert reopened.codec == "succinct"

    def test_interrupted_resave_fails_loud(self, host, tmp_path, monkeypatch):
        """A crash mid-re-save must leave a directory that errors on
        open (no manifest), never an old manifest over new blobs."""
        counter = MotivoCounter(host, MotivoConfig(k=4, seed=3))
        counter.build()
        target = str(tmp_path / "a")
        counter.save_artifact(target)
        assert open_table(target, host).table is not None

        def crash(*args, **kwargs):
            raise RuntimeError("disk full")

        with monkeypatch.context() as patched:
            patched.setattr(np, "save", crash)
            with pytest.raises(RuntimeError):
                counter.save_artifact(target)
        with pytest.raises(ArtifactError, match="no artifact manifest"):
            open_table(target, host)

    def test_reseed_overrides_stored_stream(self, host, tmp_path):
        counter = MotivoCounter(host, MotivoConfig(k=4, seed=5))
        counter.build()
        counter.save_artifact(str(tmp_path / "a"))
        one = MotivoCounter.from_artifact(
            host, str(tmp_path / "a"), reseed=1
        ).sample_naive(300)
        two = MotivoCounter.from_artifact(
            host, str(tmp_path / "a"), reseed=1
        ).sample_naive(300)
        assert one.counts == two.counts


# ----------------------------------------------------------------------
# Error paths: every failure mode raises a typed TableError subclass
# ----------------------------------------------------------------------


class TestErrorPaths:
    @pytest.fixture
    def saved(self, host, tmp_path):
        counter = MotivoCounter(host, MotivoConfig(k=4, seed=2))
        counter.build()
        counter.save_artifact(str(tmp_path / "a"))
        return str(tmp_path / "a")

    def test_missing_manifest(self, host, tmp_path):
        with pytest.raises(ArtifactError, match="no artifact manifest"):
            open_table(str(tmp_path / "nowhere"), host)

    def test_corrupted_manifest(self, host, saved):
        path = os.path.join(saved, "manifest.json")
        with open(path, "w") as handle:
            handle.write('{"format": "motivo-table-artifact", trunc')
        with pytest.raises(ArtifactError, match="corrupted"):
            open_table(saved, host)

    def test_manifest_missing_fields(self, host, saved):
        path = os.path.join(saved, "manifest.json")
        with open(path, "w") as handle:
            json.dump({"hello": "world"}, handle)
        with pytest.raises(ArtifactError, match="corrupted"):
            open_table(saved, host)

    def test_version_skew(self, host, saved):
        path = os.path.join(saved, "manifest.json")
        manifest = json.load(open(path))
        manifest["format_version"] = FORMAT_VERSION + 1
        json.dump(manifest, open(path, "w"))
        with pytest.raises(ArtifactError, match="version"):
            open_table(saved, host)

    def test_wrong_format_tag(self, host, saved):
        path = os.path.join(saved, "manifest.json")
        manifest = json.load(open(path))
        manifest["format"] = "motivo-ensemble-artifact"
        json.dump(manifest, open(path, "w"))
        with pytest.raises(ArtifactError, match="format"):
            open_table(saved, host)

    def test_graph_fingerprint_mismatch(self, saved):
        other = erdos_renyi(40, 121, rng=6)
        with pytest.raises(ArtifactError, match="different graph"):
            open_table(saved, other)

    def test_tampered_blob_fails_verify(self, host, saved):
        blob = os.path.join(saved, "layer_4.counts.npy")
        data = np.load(blob)
        data = data.copy()
        data.flat[0] += 1
        np.save(blob, data)
        with pytest.raises(ArtifactError, match="digest"):
            open_table(saved, host, verify=True)
        # without verify the structural open still succeeds
        assert open_table(saved, host).table is not None

    def test_verify_with_malformed_blob_entries_is_typed(self, host, saved):
        """verify=True must raise ArtifactError, not KeyError, when a
        manifest's blob entries lack required fields."""
        path = os.path.join(saved, "manifest.json")
        manifest = json.load(open(path))
        del manifest["layers"][0]["counts"]["digest"]
        json.dump(manifest, open(path, "w"))
        with pytest.raises(ArtifactError, match="blob entry"):
            open_table(saved, host, verify=True)

    def test_errors_are_table_errors(self, host, tmp_path):
        """The typed errors promised by the issue are TableError-typed."""
        assert issubclass(ArtifactError, TableError)
        with pytest.raises(TableError):
            open_table(str(tmp_path / "nope"), host)

    def test_corrupted_rng_state_is_typed(self, host, saved):
        path = os.path.join(saved, "manifest.json")
        manifest = json.load(open(path))
        manifest["rng_state"] = {"bit_generator": "default_rng"}
        json.dump(manifest, open(path, "w"))
        with pytest.raises(ArtifactError, match="bit generator"):
            MotivoCounter.from_artifact(host, saved)
        manifest["rng_state"] = {"bit_generator": "PCG64", "state": "junk"}
        json.dump(manifest, open(path, "w"))
        with pytest.raises(ArtifactError, match="RNG state"):
            MotivoCounter.from_artifact(host, saved)

    def test_k_mismatch_with_explicit_config(self, host, saved):
        with pytest.raises(ArtifactError, match="k="):
            MotivoCounter.from_artifact(
                host, saved, config=MotivoConfig(k=5, seed=2)
            )

    def test_seed_mismatch_with_explicit_config(self, host, saved):
        with pytest.raises(ArtifactError, match="seed"):
            MotivoCounter.from_artifact(
                host, saved, config=MotivoConfig(k=4, seed=3)
            )


# ----------------------------------------------------------------------
# Content-addressed cache
# ----------------------------------------------------------------------


class TestArtifactCache:
    def test_hit_miss_and_bit_identity(self, host, tmp_path):
        config = MotivoConfig(k=4, seed=13, artifact_dir=str(tmp_path))
        first = MotivoCounter(host, config)
        first.build()
        assert first.instrumentation["artifact_cache_misses"] == 1
        baseline = first.sample_naive(400)

        second = MotivoCounter(
            host, MotivoConfig(k=4, seed=13, artifact_dir=str(tmp_path))
        )
        second.build()
        assert second.instrumentation["artifact_cache_hits"] == 1
        assert second.sample_naive(400).counts == baseline.counts

        # and the cache is invisible relative to an uncached run
        plain = MotivoCounter(host, MotivoConfig(k=4, seed=13))
        plain.build()
        assert plain.sample_naive(400).counts == baseline.counts

    def test_key_separates_builds(self, host, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        base = MotivoConfig(k=4, seed=1)
        assert cache.key(host, base) == cache.key(host, MotivoConfig(k=4, seed=1))
        assert cache.key(host, base) != cache.key(host, MotivoConfig(k=5, seed=1))
        assert cache.key(host, base) != cache.key(host, MotivoConfig(k=4, seed=2))
        assert cache.key(host, base) != cache.key(
            host, MotivoConfig(k=4, seed=1, zero_rooting=False)
        )
        assert cache.key(host, base) != cache.key(host, base, codec="succinct")
        other = erdos_renyi(40, 121, rng=6)
        assert cache.key(host, base) != cache.key(other, base)
        # kernel choice must NOT split the cache: tables are bit-identical
        assert cache.key(host, base) == cache.key(
            host, MotivoConfig(k=4, seed=1, kernel="legacy")
        )

    def test_stale_cached_artifact_is_a_miss_not_a_failure(
        self, host, tmp_path
    ):
        """A version-skewed (or corrupted) cache slot must trigger a
        rebuild + re-admit, not crash build()."""
        root = str(tmp_path)
        config = MotivoConfig(k=4, seed=13, artifact_dir=root)
        first = MotivoCounter(host, config)
        first.build()
        baseline = first.sample_naive(300)
        cache = ArtifactCache(root)
        entry = cache.entries()[0]
        manifest_path = os.path.join(entry.path, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["format_version"] = FORMAT_VERSION + 1
        json.dump(manifest, open(manifest_path, "w"))

        again = MotivoCounter(host, MotivoConfig(k=4, seed=13, artifact_dir=root))
        again.build()
        assert again.instrumentation["artifact_cache_misses"] == 1
        assert again.sample_naive(300).counts == baseline.counts
        # the stale slot was evicted and replaced by a fresh admit
        fresh = json.load(open(manifest_path))
        assert fresh["format_version"] == FORMAT_VERSION

    def test_unseeded_builds_not_addressable(self, host, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        with pytest.raises(ArtifactError):
            cache.key(host, MotivoConfig(k=4, seed=None))
        # facade: artifact_dir with seed=None silently builds fresh
        counter = MotivoCounter(
            host, MotivoConfig(k=4, seed=None, artifact_dir=str(tmp_path))
        )
        counter.build()
        assert cache.entries() == []

    def test_list_evict_verify(self, host, tmp_path):
        root = str(tmp_path)
        for seed in (1, 2):
            counter = MotivoCounter(
                host, MotivoConfig(k=4, seed=seed, artifact_dir=root)
            )
            counter.build()
        cache = ArtifactCache(root)
        entries = cache.entries()
        assert len(entries) == 2
        assert all(entry.k == 4 for entry in entries)
        # bytes_on_disk reports actual usage: payload blobs plus the
        # manifests the old payload-sum accounting ignored, plus the
        # descent-plan blob (recorded in the manifest but excluded from
        # payload_bytes so bits-per-pair keeps measuring count data).
        payload_total = sum(entry.payload_bytes for entry in entries)
        manifest_total = sum(
            os.path.getsize(os.path.join(entry.path, "manifest.json"))
            for entry in entries
        )
        plan_total = sum(
            json.load(open(os.path.join(entry.path, "manifest.json")))
            .get("descent_plan", {})
            .get("bytes", 0)
            for entry in entries
        )
        assert (
            cache.bytes_on_disk()
            == payload_total + manifest_total + plan_total
        )
        for entry in entries:
            cache.verify(entry.key)
        assert cache.evict(entries[0].key)
        assert not cache.evict(entries[0].key)
        assert len(cache.entries()) == 1
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_cache_hit_returns_urn(self, host, tmp_path):
        """build() keeps its documented return type on a cache hit."""
        from repro.colorcoding.urn import TreeletUrn as Urn

        config = MotivoConfig(k=4, seed=13, artifact_dir=str(tmp_path))
        assert isinstance(MotivoCounter(host, config).build(), Urn)  # miss
        assert isinstance(MotivoCounter(host, config).build(), Urn)  # hit

    def test_stale_tmp_dirs_are_not_entries_and_get_reaped(
        self, host, tmp_path
    ):
        """A crash between save and admit leaves '<key>.tmp-<pid>' behind;
        it must not surface as a (phantom) cache entry, and evict/clear
        must reclaim it.  While the writer pid is alive the directory is
        in-flight, not stale — listing must leave it alone."""
        import shutil

        root = str(tmp_path)
        counter = MotivoCounter(
            host, MotivoConfig(k=4, seed=1, artifact_dir=root)
        )
        counter.build()
        cache = ArtifactCache(root)
        entry = cache.entries()[0]
        # Same-pid tmp dir: an in-flight write of this very process.
        tmp_sibling = f"{entry.path}.tmp-{os.getpid()}"
        shutil.copytree(entry.path, tmp_sibling)
        assert [e.key for e in cache.entries()] == [entry.key]
        assert os.path.isdir(tmp_sibling)  # never reaped while we live
        # bytes_on_disk counts what is really on disk — manifests and
        # the in-flight tmp directory included.
        expected = 0
        for directory, _subdirs, files in os.walk(root):
            expected += sum(
                os.path.getsize(os.path.join(directory, name))
                for name in files
            )
        assert cache.bytes_on_disk() == expected
        assert cache.bytes_on_disk() > entry.payload_bytes
        assert cache.evict(entry.key)
        assert os.listdir(root) == []  # tmp sibling reaped too

    def test_cross_pid_stale_tmp_reaped_on_listing(self, host, tmp_path):
        """A tmp dir whose owning pid is dead is a crash leftover; any
        later listing — from any process — reclaims it."""
        import shutil

        root = str(tmp_path)
        counter = MotivoCounter(
            host, MotivoConfig(k=4, seed=1, artifact_dir=root)
        )
        counter.build()
        cache = ArtifactCache(root)
        entry = cache.entries()[0]
        # Find a pid that is certainly not running.
        dead = 2 ** 22 - 7
        while True:
            try:
                os.kill(dead, 0)
            except ProcessLookupError:
                break
            except OSError:
                pass
            dead -= 1
        shutil.copytree(entry.path, f"{entry.path}.tmp-{dead}")
        assert [e.key for e in cache.entries()] == [entry.key]
        assert not os.path.isdir(f"{entry.path}.tmp-{dead}")
        # Unparseable suffixes are left alone (conservative).
        os.makedirs(os.path.join(root, "odd.tmp-notapid"))
        cache.entries()
        assert os.path.isdir(os.path.join(root, "odd.tmp-notapid"))

    def test_clear_sweeps_orphan_tmp_dirs(self, host, tmp_path):
        root = str(tmp_path)
        counter = MotivoCounter(
            host, MotivoConfig(k=4, seed=1, artifact_dir=root)
        )
        counter.build()
        cache = ArtifactCache(root)
        os.makedirs(os.path.join(root, "deadbeef.tmp-42"))
        assert cache.clear() == 1
        assert os.listdir(root) == []

    def test_verify_detects_corruption(self, host, tmp_path):
        root = str(tmp_path)
        counter = MotivoCounter(
            host, MotivoConfig(k=4, seed=1, artifact_dir=root)
        )
        counter.build()
        cache = ArtifactCache(root)
        entry = cache.entries()[0]
        blob = os.path.join(entry.path, "coloring.npy")
        with open(blob, "ab") as handle:
            handle.write(b"x")
        with pytest.raises(ArtifactError):
            cache.verify(entry.key)


# ----------------------------------------------------------------------
# Ensemble bundles
# ----------------------------------------------------------------------


class TestEnsembleArtifacts:
    def test_bundle_matches_live_ensemble(self, host, tmp_path):
        config = MotivoConfig(k=4, seed=11)
        live = PipelineEngine(host, config, colorings=4).run_naive(300)
        bundle = PipelineEngine(host, config, colorings=4).build_artifact(
            str(tmp_path / "ens")
        )
        assert bundle.seeds == live.seeds
        warm = PipelineEngine(host, config, colorings=4).run_naive(
            300, artifact=bundle
        )
        assert warm.estimates.counts == live.estimates.counts
        assert warm.seeds == live.seeds

    def test_bundle_fidelity_survives_engine_config_drift(
        self, host, tmp_path
    ):
        """Member manifests are authoritative: sampling a bundle built
        with non-default buffer/batch params is bit-identical to the
        live ensemble even when the sampling engine's own config says
        otherwise (library-path counterpart of the CLI test)."""
        built_config = MotivoConfig(
            k=4, seed=11, buffer_threshold=2, buffer_size=7, batch_size=1
        )
        live = PipelineEngine(host, built_config, colorings=2).run_naive(150)
        PipelineEngine(host, built_config, colorings=2).build_artifact(
            str(tmp_path / "ens")
        )
        defaults_engine = PipelineEngine(
            host, MotivoConfig(k=4), colorings=2
        )
        warm = defaults_engine.run_naive(150, artifact=str(tmp_path / "ens"))
        assert warm.estimates.counts == live.estimates.counts
        # an explicit batch_size override is allowed to change the stream
        other = defaults_engine.run_naive(
            150, artifact=str(tmp_path / "ens"), batch_size=4096
        )
        assert other.estimates.samples == warm.estimates.samples

    def test_bundle_by_path_and_parallel_jobs(self, host, tmp_path):
        config = MotivoConfig(k=4, seed=11)
        live = PipelineEngine(host, config, colorings=3).run_naive(200)
        PipelineEngine(host, config, colorings=3).build_artifact(
            str(tmp_path / "ens")
        )
        warm = PipelineEngine(host, config, colorings=3, jobs=2).run_naive(
            200, artifact=str(tmp_path / "ens")
        )
        assert warm.estimates.counts == live.estimates.counts

    def test_bundle_rejects_mismatched_engine(self, host, tmp_path):
        from repro.errors import SamplingError

        config = MotivoConfig(k=4, seed=11)
        PipelineEngine(host, config, colorings=3).build_artifact(
            str(tmp_path / "ens")
        )
        with pytest.raises(SamplingError, match="colorings"):
            PipelineEngine(host, config, colorings=2).run_naive(
                100, artifact=str(tmp_path / "ens")
            )
        with pytest.raises(SamplingError, match="k="):
            PipelineEngine(
                host, MotivoConfig(k=5, seed=11), colorings=3
            ).run_naive(100, artifact=str(tmp_path / "ens"))

    def test_bundle_graph_mismatch(self, host, tmp_path):
        config = MotivoConfig(k=4, seed=11)
        PipelineEngine(host, config, colorings=2).build_artifact(
            str(tmp_path / "ens")
        )
        other = erdos_renyi(40, 121, rng=6)
        with pytest.raises(ArtifactError, match="different graph"):
            open_ensemble(str(tmp_path / "ens"), other)

    def test_cli_sample_restores_nondefault_sampling_params(
        self, host, tmp_path
    ):
        """Bit-identity survives non-default buffer/batch build params:
        the CLI must restore them from the bundle manifest, since both
        change how sampling consumes the RNG stream."""
        from repro.cli import main
        from repro.graph.io import save_edge_list
        from repro.sampling.estimates import GraphletEstimates

        graph_path = str(tmp_path / "g.txt")
        save_edge_list(host, graph_path)
        config = MotivoConfig(
            k=4, seed=11, buffer_threshold=2, buffer_size=7, batch_size=1
        )
        live = PipelineEngine(host, config, colorings=2).run_naive(150)
        PipelineEngine(host, config, colorings=2).build_artifact(
            str(tmp_path / "ens"), source=graph_path
        )
        out = tmp_path / "warm.json"
        assert main([
            "sample", str(tmp_path / "ens"), "--samples", "150",
            "--output", str(out),
        ]) == 0
        warm = GraphletEstimates.from_json(out.read_text())
        assert warm.counts == live.estimates.counts

    def test_ensemble_verify_detects_member_corruption(self, host, tmp_path):
        config = MotivoConfig(k=4, seed=11)
        bundle = PipelineEngine(host, config, colorings=2).build_artifact(
            str(tmp_path / "ens")
        )
        bundle.verify()
        blob = os.path.join(
            str(tmp_path / "ens" / "coloring-001"), "coloring.npy"
        )
        with open(blob, "ab") as handle:
            handle.write(b"x")
        with pytest.raises(ArtifactError, match="digest|bytes"):
            bundle.verify()

    def test_missing_member_detected(self, host, tmp_path):
        import shutil

        config = MotivoConfig(k=4, seed=11)
        PipelineEngine(host, config, colorings=2).build_artifact(
            str(tmp_path / "ens")
        )
        shutil.rmtree(str(tmp_path / "ens" / "coloring-001"))
        with pytest.raises(ArtifactError, match="missing members"):
            open_ensemble(str(tmp_path / "ens"), host)


# ----------------------------------------------------------------------
# Store lifecycle
# ----------------------------------------------------------------------


class TestStoreLifecycle:
    def test_spill_store_context_manager_removes_created_dir(self, tmp_path):
        target = tmp_path / "fresh"
        with SpillStore(str(target)) as store:
            store.spill_layer(1, [(0, 1)], np.ones((1, 4)))
            assert target.is_dir()
        assert not target.exists()
        assert store.closed

    def test_spill_store_preexisting_dir_keeps_foreign_files(self, tmp_path):
        target = tmp_path / "existing"
        target.mkdir()
        (target / "keep.txt").write_text("mine")
        store = SpillStore(str(target))
        store.spill_layer(1, [(0, 1)], np.ones((1, 4)))
        store.close()
        store.close()  # idempotent
        assert sorted(p.name for p in target.iterdir()) == ["keep.txt"]

    def test_sharded_store_close(self, host, tmp_path):
        target = tmp_path / "shards"
        coloring = ColoringScheme.uniform(host.num_vertices, 4, rng=1)
        with ShardedStore(2, directory=str(target)) as store:
            build_table(host, coloring, store=store)
            assert any(target.iterdir())
        assert not target.exists()

    def test_counter_close_releases_spill(self, host, tmp_path):
        spill = tmp_path / "s"
        with MotivoCounter(
            host, MotivoConfig(k=4, seed=4, spill_dir=str(spill))
        ) as counter:
            counter.build()
            counter.sample_naive(100)
        assert not spill.exists()


# ----------------------------------------------------------------------
# CLI build / sample
# ----------------------------------------------------------------------


class TestCli:
    @pytest.fixture
    def edge_list(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "g.txt"
        assert main(["generate", "lollipop", str(path)]) == 0
        return str(path)

    def test_build_sample_matches_one_shot_count(
        self, edge_list, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.sampling.estimates import GraphletEstimates

        one_shot = tmp_path / "oneshot.json"
        warm = tmp_path / "warm.json"
        assert main([
            "count", edge_list, "--k", "4", "--samples", "400",
            "--seed", "11", "--output", str(one_shot),
        ]) == 0
        assert main([
            "build", edge_list, "--k", "4", "--seed", "11",
            "--output", str(tmp_path / "art"),
        ]) == 0
        err = capsys.readouterr().err
        assert "table artifact" in err
        assert "bits/pair" in err
        assert main([
            "sample", str(tmp_path / "art"), "--samples", "400",
            "--output", str(warm),
        ]) == 0
        assert "no rebuild" in capsys.readouterr().err
        a = GraphletEstimates.from_json(one_shot.read_text())
        b = GraphletEstimates.from_json(warm.read_text())
        assert a.counts == b.counts

    def test_build_sample_ensemble(self, edge_list, tmp_path, capsys):
        from repro.cli import main

        art = str(tmp_path / "ens")
        assert main([
            "build", edge_list, "--k", "4", "--seed", "3",
            "--colorings", "3", "--codec", "succinct", "--output", art,
        ]) == 0
        assert "ensemble artifact: 3/3" in capsys.readouterr().err
        assert main(["sample", art, "--samples", "200"]) == 0
        assert "sampled ensemble artifact" in capsys.readouterr().err

    def test_sample_ags_flag(self, edge_list, tmp_path, capsys):
        from repro.cli import main

        art = str(tmp_path / "art")
        assert main([
            "build", edge_list, "--k", "4", "--seed", "5", "-o", art,
        ]) == 0
        assert main([
            "sample", art, "--ags", "--samples", "200",
            "--cover-threshold", "50",
        ]) == 0
        assert "ags samples" in capsys.readouterr().err

    def test_sample_uses_recorded_source(self, edge_list, tmp_path):
        """No --graph needed: the manifest's source hint is enough."""
        from repro.cli import main

        art = str(tmp_path / "art")
        assert main(["build", edge_list, "--k", "4", "--seed", "6", "-o", art]) == 0
        assert main(["sample", art, "--samples", "100"]) == 0

    def test_sample_bad_artifact_is_exit_one(self, tmp_path, capsys):
        from repro.cli import main

        status = main(["sample", str(tmp_path / "nothing"), "--samples", "10"])
        assert status == 1
        assert "error:" in capsys.readouterr().err
