"""Tests for the compact count table (motivo §3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TableError
from repro.table.count_table import CountTable, Layer
from repro.treelets.encoding import SINGLETON, encode_children, merge

EDGE = merge(SINGLETON, SINGLETON)
PATH3 = encode_children([EDGE])
STAR3 = encode_children([SINGLETON, SINGLETON])


def make_table():
    """A small hand-built table: k=3, 4 vertices."""
    table = CountTable(k=3, num_vertices=4, zero_rooted=False)
    table.add_layer(1, {
        (SINGLETON, 0b001): np.array([1.0, 0.0, 0.0, 1.0]),
        (SINGLETON, 0b010): np.array([0.0, 1.0, 0.0, 0.0]),
        (SINGLETON, 0b100): np.array([0.0, 0.0, 1.0, 0.0]),
    })
    table.add_layer(2, {
        (EDGE, 0b011): np.array([1.0, 1.0, 0.0, 0.0]),
        (EDGE, 0b101): np.array([2.0, 0.0, 1.0, 0.0]),
    })
    table.add_layer(3, {
        (PATH3, 0b111): np.array([3.0, 1.0, 0.0, 2.0]),
        (STAR3, 0b111): np.array([1.0, 0.0, 4.0, 0.0]),
    })
    return table


class TestLayer:
    def test_sorted_by_key(self):
        keys = [(EDGE, 0b101), (EDGE, 0b011)]
        counts = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer = Layer(2, keys, counts)
        assert layer.keys == [(EDGE, 0b011), (EDGE, 0b101)]
        assert layer.counts[0].tolist() == [3.0, 4.0]

    def test_shape_mismatch(self):
        with pytest.raises(TableError):
            Layer(2, [(EDGE, 0b011)], np.zeros((2, 3)))

    def test_duplicate_keys(self):
        with pytest.raises(TableError):
            Layer(2, [(EDGE, 0b011), (EDGE, 0b011)], np.zeros((2, 3)))

    def test_cumulative_matches_running_sum(self):
        layer = make_table().layer(3)
        cumulative = layer.cumulative()
        assert np.allclose(cumulative[-1], layer.totals())
        assert np.allclose(np.diff(cumulative, axis=0), layer.counts[1:])

    def test_nonzero_pairs(self):
        assert make_table().layer(2).nonzero_pairs() == 4


class TestCountTable:
    def test_k_validation(self):
        with pytest.raises(TableError):
            CountTable(k=1, num_vertices=3, zero_rooted=False)

    def test_layer_bounds(self):
        table = make_table()
        with pytest.raises(TableError):
            table.add_layer(4, {})
        with pytest.raises(TableError):
            table.add_layer(2, {})  # duplicate

    def test_wrong_size_key(self):
        table = CountTable(k=3, num_vertices=2, zero_rooted=False)
        with pytest.raises(TableError):
            table.add_layer(1, {(EDGE, 0b011): np.zeros(2)})

    def test_missing_layer(self):
        table = CountTable(k=3, num_vertices=2, zero_rooted=False)
        with pytest.raises(TableError):
            table.layer(2)
        assert not table.has_layer(2)

    def test_occ_operations(self):
        table = make_table()
        assert table.occ(EDGE, 0b101, 0) == 2.0
        assert table.occ(EDGE, 0b110, 0) == 0.0  # absent key
        assert table.occ_total(0) == 4.0  # 3 + 1 at vertex 0
        assert table.occ_total(2) == 4.0

    def test_iter_treelet(self):
        table = make_table()
        pairs = dict(table.iter_treelet(EDGE, 0))
        assert pairs == {0b011: 1.0, 0b101: 2.0}
        assert dict(table.iter_treelet(EDGE, 3)) == {}

    def test_record(self):
        table = make_table()
        record = table.record(0, 2)
        assert record == [((EDGE, 0b011), 1.0), ((EDGE, 0b101), 2.0)]

    def test_cumulative_record(self):
        table = make_table()
        record = table.cumulative_record(0, 3)
        keys = [key for key, _ in record]
        etas = [eta for _, eta in record]
        assert etas == sorted(etas)
        assert etas[-1] == table.occ_total(0)
        assert keys == sorted(keys)

    def test_root_weights(self):
        table = make_table()
        assert table.root_weights().tolist() == [4.0, 1.0, 4.0, 2.0]

    def test_sample_key_distribution(self, rng):
        table = make_table()
        draws = [table.sample_key(0, rng) for _ in range(4000)]
        path_fraction = sum(1 for key in draws if key[0] == PATH3) / 4000
        # c(PATH3, v0) = 3 of total 4.
        assert path_fraction == pytest.approx(0.75, abs=0.03)

    def test_sample_key_empty_vertex(self, rng):
        table = make_table()
        table.layer(3).counts[:, 2] = 0.0
        # Invalidate caches by rebuilding; simpler: vertex 1 has weight 1.
        with pytest.raises(TableError):
            fresh = make_table()
            fresh.layer(3).counts[:, :] = 0.0
            fresh.sample_key(0, rng)

    def test_accounting(self):
        table = make_table()
        pairs = table.total_pairs()
        assert pairs == 4 + 4 + 5  # nonzero entries per layer
        assert table.paper_equivalent_bytes() == pairs * 176 // 8
        assert table.actual_bytes() > 0

    def test_drop_and_set_layer(self):
        table = make_table()
        layer = table.layer(2)
        table.drop_layer(2)
        assert not table.has_layer(2)
        table.set_layer(layer)
        assert table.has_layer(2)
        with pytest.raises(TableError):
            table.set_layer(layer)

    def test_repr(self):
        assert "CountTable(k=3" in repr(make_table())
