"""Tests for the compact count table (motivo §3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TableError
from repro.table.count_table import (
    CountTable,
    DenseLayer,
    Layer,
    SuccinctLayer,
)
from repro.treelets.encoding import SINGLETON, encode_children, merge

EDGE = merge(SINGLETON, SINGLETON)
PATH3 = encode_children([EDGE])
STAR3 = encode_children([SINGLETON, SINGLETON])


def make_table():
    """A small hand-built table: k=3, 4 vertices."""
    table = CountTable(k=3, num_vertices=4, zero_rooted=False)
    table.add_layer(1, {
        (SINGLETON, 0b001): np.array([1.0, 0.0, 0.0, 1.0]),
        (SINGLETON, 0b010): np.array([0.0, 1.0, 0.0, 0.0]),
        (SINGLETON, 0b100): np.array([0.0, 0.0, 1.0, 0.0]),
    })
    table.add_layer(2, {
        (EDGE, 0b011): np.array([1.0, 1.0, 0.0, 0.0]),
        (EDGE, 0b101): np.array([2.0, 0.0, 1.0, 0.0]),
    })
    table.add_layer(3, {
        (PATH3, 0b111): np.array([3.0, 1.0, 0.0, 2.0]),
        (STAR3, 0b111): np.array([1.0, 0.0, 4.0, 0.0]),
    })
    return table


class TestLayer:
    def test_sorted_by_key(self):
        keys = [(EDGE, 0b101), (EDGE, 0b011)]
        counts = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer = Layer(2, keys, counts)
        assert layer.keys == [(EDGE, 0b011), (EDGE, 0b101)]
        assert layer.counts[0].tolist() == [3.0, 4.0]

    def test_shape_mismatch(self):
        with pytest.raises(TableError):
            Layer(2, [(EDGE, 0b011)], np.zeros((2, 3)))

    def test_duplicate_keys(self):
        with pytest.raises(TableError):
            Layer(2, [(EDGE, 0b011), (EDGE, 0b011)], np.zeros((2, 3)))

    def test_cumulative_matches_running_sum(self):
        layer = make_table().layer(3)
        cumulative = layer.cumulative()
        assert np.allclose(cumulative[-1], layer.totals())
        assert np.allclose(np.diff(cumulative, axis=0), layer.counts[1:])

    def test_nonzero_pairs(self):
        assert make_table().layer(2).nonzero_pairs() == 4

    def test_layer_alias_is_dense(self):
        assert Layer is DenseLayer
        assert make_table().layer(2).layout == "dense"

    def test_treelet_rows_contiguous_range(self):
        layer = make_table().layer(2)
        rows = layer.treelet_rows(EDGE)
        assert isinstance(rows, range)
        assert list(rows) == [0, 1]
        assert layer.treelet_rows(PATH3) == range(0, 0)


class TestSuccinctLayer:
    def test_from_dense_round_trip(self):
        for size in (1, 2, 3):
            dense = make_table().layer(size)
            sealed = SuccinctLayer.from_dense(dense)
            assert sealed.keys == dense.keys
            assert sealed.nonzero_pairs() == dense.nonzero_pairs()
            assert np.array_equal(sealed.dense_counts(), dense.counts)
            assert np.array_equal(sealed.totals(), dense.totals())
            for row in range(dense.num_keys):
                assert np.array_equal(
                    sealed.row_values(row), dense.counts[row]
                )
                for v in range(dense.num_vertices):
                    assert sealed.value_at(row, v) == dense.counts[row, v]

    def test_values_stored_at_minimal_dtype(self):
        sealed = SuccinctLayer.from_dense(make_table().layer(3))
        assert sealed.values.dtype == np.uint8
        assert sealed.key_row.dtype == np.uint8
        big = DenseLayer(
            2, [(EDGE, 0b011)], np.array([[0.0, 70000.0]])
        )
        assert SuccinctLayer.from_dense(big).values.dtype == np.uint32

    def test_non_integer_counts_stay_float(self):
        layer = DenseLayer(2, [(EDGE, 0b011)], np.array([[0.5, 2.0]]))
        sealed = SuccinctLayer.from_dense(layer)
        assert sealed.values.dtype == np.float64
        assert sealed.value_at(0, 0) == 0.5

    def test_values_at_matches_dense_gather(self):
        dense = make_table().layer(3)
        sealed = SuccinctLayer.from_dense(dense)
        rows = np.array([0, 1, 0])
        verts = np.array([3, 0, 2, 1])
        assert np.array_equal(
            sealed.values_at(rows, verts), dense.values_at(rows, verts)
        )

    def test_key_major_pairs_match(self):
        dense = make_table().layer(3)
        sealed = SuccinctLayer.from_dense(dense)
        for a, b in zip(dense.key_major_pairs(), sealed.key_major_pairs()):
            assert np.array_equal(a, b)

    def test_sampling_parity_with_dense(self):
        dense = make_table().layer(3)
        sealed = SuccinctLayer.from_dense(dense)
        us = np.random.default_rng(4).random(64)
        for u in us.tolist():
            for v in (0, 1, 3):
                assert sealed.sample_row_at(v, u) == dense.sample_row_at(v, u)
        roots = np.array([0, 1, 3] * 8)
        assert np.array_equal(
            sealed.sample_rows_batch(roots, us[: roots.size]),
            dense.sample_rows_batch(roots, us[: roots.size]),
        )
        # An empty record raises the same error as the dense zero column.
        empty = SuccinctLayer.from_dense(
            DenseLayer(2, [(EDGE, 0b011)], np.array([[0.0, 3.0]]))
        )
        with pytest.raises(TableError):
            empty.sample_row_at(0, 0.5)
        with pytest.raises(TableError):
            empty.sample_rows_batch(np.array([0]), np.array([0.5]))

    def test_memory_bytes_counts_lazy_caches(self):
        sealed = SuccinctLayer.from_dense(make_table().layer(3))
        base = sealed.memory_bytes()
        sealed.sample_row_at(0, 0.5)  # builds the cumulative records
        assert sealed.memory_bytes() > base

    def test_csr_validation(self):
        with pytest.raises(TableError):
            SuccinctLayer(
                2, [(EDGE, 0b101), (EDGE, 0b011)],  # unsorted keys
                np.array([0, 1]), np.array([0]), np.array([1.0]),
            )
        with pytest.raises(TableError):
            SuccinctLayer(
                2, [(EDGE, 0b011)],
                np.array([0, 2]), np.array([0]), np.array([1.0]),
            )
        with pytest.raises(TableError):
            SuccinctLayer(
                2, [(EDGE, 0b011)],
                np.array([0, 1]), np.array([5]), np.array([1.0]),
            )
        with pytest.raises(TableError):
            # Key rows must strictly ascend within a record.
            SuccinctLayer(
                2, [(EDGE, 0b011), (EDGE, 0b101)],
                np.array([0, 2]), np.array([1, 0]), np.array([1.0, 2.0]),
            )


class TestCountTable:
    def test_k_validation(self):
        with pytest.raises(TableError):
            CountTable(k=1, num_vertices=3, zero_rooted=False)

    def test_layer_bounds(self):
        table = make_table()
        with pytest.raises(TableError):
            table.add_layer(4, {})
        with pytest.raises(TableError):
            table.add_layer(2, {})  # duplicate

    def test_wrong_size_key(self):
        table = CountTable(k=3, num_vertices=2, zero_rooted=False)
        with pytest.raises(TableError):
            table.add_layer(1, {(EDGE, 0b011): np.zeros(2)})

    def test_missing_layer(self):
        table = CountTable(k=3, num_vertices=2, zero_rooted=False)
        with pytest.raises(TableError):
            table.layer(2)
        assert not table.has_layer(2)

    def test_occ_operations(self):
        table = make_table()
        assert table.occ(EDGE, 0b101, 0) == 2.0
        assert table.occ(EDGE, 0b110, 0) == 0.0  # absent key
        assert table.occ_total(0) == 4.0  # 3 + 1 at vertex 0
        assert table.occ_total(2) == 4.0

    def test_iter_treelet(self):
        table = make_table()
        pairs = dict(table.iter_treelet(EDGE, 0))
        assert pairs == {0b011: 1.0, 0b101: 2.0}
        assert dict(table.iter_treelet(EDGE, 3)) == {}

    def test_record(self):
        table = make_table()
        record = table.record(0, 2)
        assert record == [((EDGE, 0b011), 1.0), ((EDGE, 0b101), 2.0)]

    def test_cumulative_record(self):
        table = make_table()
        record = table.cumulative_record(0, 3)
        keys = [key for key, _ in record]
        etas = [eta for _, eta in record]
        assert etas == sorted(etas)
        assert etas[-1] == table.occ_total(0)
        assert keys == sorted(keys)

    def test_cumulative_record_nonzero_only(self):
        # Like record (and the paper's records): zero-count keys are
        # omitted, and the keys match record's exactly.
        table = make_table()
        sparse = table.cumulative_record(1, 3)
        assert sparse == [((PATH3, 0b111), 1.0)]
        assert [key for key, _ in sparse] == [
            key for key, _ in table.record(1, 3)
        ]

    def test_seal_round_trip(self):
        table = make_table().seal("succinct")
        assert table.layout() == "succinct"
        reference = make_table()
        for v in range(4):
            for h in (1, 2, 3):
                assert table.record(v, h) == reference.record(v, h)
        assert table.actual_bytes() < reference.actual_bytes()

    def test_root_weights(self):
        table = make_table()
        assert table.root_weights().tolist() == [4.0, 1.0, 4.0, 2.0]

    def test_sample_key_distribution(self, rng):
        table = make_table()
        draws = [table.sample_key(0, rng) for _ in range(4000)]
        path_fraction = sum(1 for key in draws if key[0] == PATH3) / 4000
        # c(PATH3, v0) = 3 of total 4.
        assert path_fraction == pytest.approx(0.75, abs=0.03)

    def test_sample_key_empty_vertex(self, rng):
        table = make_table()
        table.layer(3).counts[:, 2] = 0.0
        # Invalidate caches by rebuilding; simpler: vertex 1 has weight 1.
        with pytest.raises(TableError):
            fresh = make_table()
            fresh.layer(3).counts[:, :] = 0.0
            fresh.sample_key(0, rng)

    def test_accounting(self):
        table = make_table()
        pairs = table.total_pairs()
        assert pairs == 4 + 4 + 5  # nonzero entries per layer
        assert table.paper_equivalent_bytes() == pairs * 176 // 8
        assert table.actual_bytes() > 0

    def test_drop_and_set_layer(self):
        table = make_table()
        layer = table.layer(2)
        table.drop_layer(2)
        assert not table.has_layer(2)
        table.set_layer(layer)
        assert table.has_layer(2)
        with pytest.raises(TableError):
            table.set_layer(layer)

    def test_repr(self):
        assert "CountTable(k=3" in repr(make_table())
