"""Unit and property tests for the succinct treelet encoding (§3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MergeError, TreeletError
from repro.treelets.encoding import (
    SINGLETON,
    beta,
    bit_count,
    can_merge,
    canonical_free,
    centroids,
    children,
    decomp,
    degree_sequence,
    encode_children,
    encode_parent_vector,
    getsize,
    merge,
    parent_vector,
    rootings,
    to_bit_string,
    tree_edges,
    treelet_key,
)
from repro.treelets.registry import enumerate_rooted_treelets


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def random_parent_vector(draw, max_nodes=9):
    """A random rooted tree as a topologically ordered parent vector."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    parents = [-1]
    for node in range(1, n):
        parents.append(draw(st.integers(min_value=0, max_value=node - 1)))
    return parents


@st.composite
def random_treelet(draw, max_nodes=9):
    return encode_parent_vector(draw(random_parent_vector(max_nodes)))


# ----------------------------------------------------------------------
# Basic structure
# ----------------------------------------------------------------------

class TestBasics:
    def test_singleton(self):
        assert getsize(SINGLETON) == 1
        assert bit_count(SINGLETON) == 0
        assert to_bit_string(SINGLETON) == ""
        assert children(SINGLETON) == []

    def test_edge(self):
        edge = merge(SINGLETON, SINGLETON)
        assert getsize(edge) == 2
        assert to_bit_string(edge) == "10"

    def test_negative_rejected(self):
        with pytest.raises(TreeletError):
            getsize(-1)

    @given(random_treelet())
    def test_size_is_one_plus_popcount(self, t):
        assert getsize(t) == 1 + bin(t).count("1")
        assert bit_count(t) == 2 * (getsize(t) - 1)

    @given(random_treelet())
    def test_string_balanced(self, t):
        text = to_bit_string(t)
        assert text.count("1") == text.count("0")
        depth = 0
        for bit in text:
            depth += 1 if bit == "1" else -1
            assert depth >= 0
        assert depth == 0


class TestCanonicality:
    @given(random_parent_vector())
    def test_child_order_irrelevant(self, parents):
        """Permuting sibling subtrees must not change the encoding."""
        t = encode_parent_vector(parents)
        # Re-encode from the decoded edge structure rooted the same way:
        decoded_parents = parent_vector(t)
        assert encode_parent_vector(decoded_parents) == t

    def test_star_vs_path(self):
        star = encode_parent_vector([-1, 0, 0, 0])
        path = encode_parent_vector([-1, 0, 1, 2])
        assert star != path
        assert getsize(star) == getsize(path) == 4

    def test_distinct_count_matches_otter(self):
        levels = enumerate_rooted_treelets(7)
        assert [len(level) for level in levels] == [1, 1, 2, 4, 9, 20, 48]

    @given(random_treelet())
    def test_round_trip_via_edges(self, t):
        edges = tree_edges(t)
        assert len(edges) == getsize(t) - 1
        parents = parent_vector(t)
        assert encode_parent_vector(parents) == t


class TestMergeDecomp:
    def test_decomp_singleton_fails(self):
        with pytest.raises(TreeletError):
            decomp(SINGLETON)

    def test_beta_singleton_fails(self):
        with pytest.raises(TreeletError):
            beta(SINGLETON)

    @given(random_treelet())
    def test_decomp_merge_inverse(self, t):
        if t == SINGLETON:
            return
        t_prime, t_second = decomp(t)
        assert merge(t_prime, t_second) == t
        assert getsize(t_prime) + getsize(t_second) == getsize(t)

    @given(random_treelet(max_nodes=6), random_treelet(max_nodes=6))
    def test_merge_checked(self, t1, t2):
        if can_merge(t1, t2):
            merged = merge(t1, t2)
            back_prime, back_second = decomp(merged)
            assert back_second == t2
            assert back_prime == t1
        else:
            with pytest.raises(MergeError):
                merge(t1, t2)

    def test_merge_order_check(self):
        edge = merge(SINGLETON, SINGLETON)  # 2 nodes
        path3 = merge(edge, SINGLETON)  # path rooted at end? no: star/path on 3
        # Attaching a 3-node subtree onto a tree whose first child is a
        # single node violates the canonical order.
        with pytest.raises(MergeError):
            merge(path3, path3)

    @given(random_treelet())
    def test_beta_counts_leading_children(self, t):
        if t == SINGLETON:
            return
        kids = children(t)
        first = kids[0]
        expected = 0
        for child in kids:
            if child == first:
                expected += 1
            else:
                break
        assert beta(t) == expected

    def test_beta_star(self):
        star5 = encode_children([SINGLETON] * 4)
        assert beta(star5) == 4

    def test_beta_mixed(self):
        edge = merge(SINGLETON, SINGLETON)
        mixed = encode_children([SINGLETON, SINGLETON, edge])
        assert beta(mixed) == 2


class TestRerooting:
    @given(random_treelet(max_nodes=8))
    def test_rootings_count(self, t):
        assert len(rootings(t)) == getsize(t)

    @given(random_treelet(max_nodes=8))
    def test_rootings_preserve_free_shape(self, t):
        shapes = {canonical_free(r) for r in rootings(t)}
        assert shapes == {canonical_free(t)}

    @given(random_treelet(max_nodes=8))
    def test_canonical_free_idempotent(self, t):
        shape = canonical_free(t)
        assert canonical_free(shape) == shape

    def test_path_free_form(self):
        end_rooted = encode_parent_vector([-1, 0, 1, 2, 3])
        center_rooted = encode_parent_vector([-1, 0, 1, 0, 3])
        assert canonical_free(end_rooted) == canonical_free(center_rooted)

    def test_centroids_path_even(self):
        path4 = encode_parent_vector([-1, 0, 1, 2])
        assert len(centroids(path4)) == 2

    def test_centroids_star(self):
        star = encode_parent_vector([-1, 0, 0, 0, 0])
        middles = centroids(star)
        assert len(middles) == 1
        # The centroid of a star is its center (degree 4 here).
        degrees = degree_sequence(star)
        assert degrees == [1, 1, 1, 1, 4]


class TestOrder:
    @given(random_treelet(), random_treelet())
    def test_key_total_order(self, a, b):
        ka, kb = treelet_key(a), treelet_key(b)
        assert (ka == kb) == (a == b)

    def test_smaller_size_first(self):
        edge = merge(SINGLETON, SINGLETON)
        assert treelet_key(SINGLETON) < treelet_key(edge)
