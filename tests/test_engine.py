"""Tests for the batched build-up kernel and the ensemble engine.

The contract under test is strong: the batched one-SpMM-per-layer kernel
must produce *bit-identical* tables to the legacy per-key oracle on every
configuration (sizes, 0-rooting, spill, degenerate colorings), and the
ensemble engine must give identical results for a fixed seed no matter
how many worker processes it fans out over.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BuildError, SamplingError
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.engine import EnsembleResult, PipelineEngine, derive_child_seeds
from repro.graph.generators import erdos_renyi
from repro.motivo import MotivoConfig, MotivoCounter
from repro.table.flush import SpillStore
from repro.util.instrument import Instrumentation


def assert_bit_identical(a, b, k):
    for h in range(1, k + 1):
        layer_a, layer_b = a.layer(h), b.layer(h)
        assert layer_a.keys == layer_b.keys, f"layer {h} keys differ"
        assert np.array_equal(
            np.asarray(layer_a.counts), np.asarray(layer_b.counts)
        ), f"layer {h} bits differ"


class TestKernelEquivalence:
    """Batched vs legacy: bit-identical on the full configuration matrix."""

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    @pytest.mark.parametrize("zero_rooting", [True, False])
    def test_random_graphs(self, k, zero_rooting):
        graph = erdos_renyi(40, 140, rng=k)
        coloring = ColoringScheme.uniform(40, k, rng=k + 50)
        batched = build_table(
            graph, coloring, zero_rooting=zero_rooting, kernel="batched"
        )
        legacy = build_table(
            graph, coloring, zero_rooting=zero_rooting, kernel="legacy"
        )
        assert_bit_identical(batched, legacy, k)

    @pytest.mark.parametrize("kernel_pair", [("batched", "legacy")])
    def test_with_spill(self, tmp_path, kernel_pair):
        graph = erdos_renyi(30, 90, rng=2)
        coloring = ColoringScheme.uniform(30, 4, rng=3)
        tables = []
        for kernel in kernel_pair:
            store = SpillStore(str(tmp_path / kernel))
            tables.append(
                build_table(graph, coloring, spill=store, kernel=kernel)
            )
        assert_bit_identical(tables[0], tables[1], 4)
        assert isinstance(tables[0].layer(4).counts, np.memmap)

    def test_missing_color_falls_back(self):
        """A color absent from the graph forces the resolving path."""
        graph = erdos_renyi(12, 26, rng=5)
        colors = [0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2]
        coloring = ColoringScheme.fixed(colors, k=4)
        instrumentation = Instrumentation()
        batched = build_table(
            graph, coloring, instrumentation=instrumentation, kernel="batched"
        )
        legacy = build_table(graph, coloring, kernel="legacy")
        assert instrumentation["fallback_levels"] > 0
        assert_bit_identical(batched, legacy, 4)

    def test_biased_coloring(self):
        graph = erdos_renyi(30, 80, rng=6)
        coloring = ColoringScheme.biased(30, 4, lam=0.15, rng=7)
        assert_bit_identical(
            build_table(graph, coloring, kernel="batched"),
            build_table(graph, coloring, kernel="legacy"),
            4,
        )

    def test_unknown_kernel_rejected(self):
        graph = erdos_renyi(10, 20, rng=0)
        coloring = ColoringScheme.uniform(10, 3, rng=1)
        with pytest.raises(BuildError):
            build_table(graph, coloring, kernel="turbo")

    def test_batched_kernel_instrumentation(self):
        graph = erdos_renyi(25, 70, rng=8)
        coloring = ColoringScheme.uniform(25, 4, rng=9)
        instrumentation = Instrumentation()
        build_table(graph, coloring, instrumentation=instrumentation)
        assert instrumentation["merge_ops"] > 0
        assert instrumentation["spmm_ops"] > 0
        assert instrumentation.timings["buildup"] > 0

    def test_merge_ops_equal_across_kernels(self):
        graph = erdos_renyi(25, 70, rng=10)
        coloring = ColoringScheme.uniform(25, 5, rng=11)
        counts = {}
        for kernel in ("batched", "legacy"):
            instrumentation = Instrumentation()
            build_table(
                graph, coloring, instrumentation=instrumentation, kernel=kernel
            )
            counts[kernel] = instrumentation["merge_ops"]
        assert counts["batched"] == counts["legacy"]


class TestDerivedSeeds:
    def test_deterministic(self):
        assert derive_child_seeds(42, 5) == derive_child_seeds(42, 5)

    def test_distinct_across_colorings(self):
        seeds = derive_child_seeds(42, 8)
        assert len(set(seeds)) == 8

    def test_rejects_empty(self):
        with pytest.raises(SamplingError):
            derive_child_seeds(1, 0)


class TestPipelineEngine:
    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi(40, 120, rng=1)

    def test_serial_matches_parallel(self, graph):
        config = MotivoConfig(k=4, seed=99)
        serial = PipelineEngine(graph, config, colorings=3, jobs=1)
        parallel = PipelineEngine(graph, config, colorings=3, jobs=2)
        result_serial = serial.run_naive(300)
        result_parallel = parallel.run_naive(300)
        assert result_serial.seeds == result_parallel.seeds
        assert result_serial.estimates.counts == result_parallel.estimates.counts
        assert result_serial.estimates.hits == result_parallel.estimates.hits

    def test_repeat_runs_identical(self, graph):
        config = MotivoConfig(k=4, seed=7)
        first = PipelineEngine(graph, config, colorings=2).run_naive(200)
        second = PipelineEngine(graph, config, colorings=2).run_naive(200)
        assert first.estimates.counts == second.estimates.counts

    def test_ags_ensemble(self, graph):
        config = MotivoConfig(k=4, seed=13)
        result = PipelineEngine(graph, config, colorings=2, jobs=2).run_ags(
            200, cover_threshold=50
        )
        assert isinstance(result, EnsembleResult)
        assert result.estimates.method == "ags-averaged"
        assert result.estimates.total > 0

    def test_merged_instrumentation(self, graph):
        config = MotivoConfig(k=4, seed=3)
        result = PipelineEngine(graph, config, colorings=3).run_naive(100)
        assert result.instrumentation["ensemble_runs"] == 3
        assert result.instrumentation["merge_ops"] > 0
        assert result.instrumentation.timings["buildup"] > 0
        assert result.instrumentation.timings["ensemble"] > 0

    def test_empty_urn_runs_average_as_zero(self):
        tiny = erdos_renyi(3, 2, rng=0)
        result = PipelineEngine(
            tiny, MotivoConfig(k=5, seed=1), colorings=2
        ).run_naive(10)
        assert result.empty_runs == 2
        assert result.estimates.counts == {}
        assert result.instrumentation["ensemble_empty_runs"] == 2

    def test_validation(self, graph):
        with pytest.raises(SamplingError):
            PipelineEngine(graph, MotivoConfig(), colorings=0)
        with pytest.raises(SamplingError):
            PipelineEngine(graph, MotivoConfig(), jobs=0)
        engine = PipelineEngine(graph, MotivoConfig(k=4, seed=1), colorings=2)
        with pytest.raises(SamplingError):
            engine.run_naive(10, seeds=[1])

    def test_parallel_spill_dirs_are_namespaced(self, graph, tmp_path):
        """Concurrent workers must not flush layers into the same files."""
        import os

        config = MotivoConfig(k=4, seed=21, spill_dir=str(tmp_path / "s"))
        parallel = PipelineEngine(
            graph, config, colorings=3, jobs=2, cleanup_spill=False
        )
        serial_config = MotivoConfig(
            k=4, seed=21, spill_dir=str(tmp_path / "s2")
        )
        serial = PipelineEngine(
            graph, serial_config, colorings=3, jobs=1, cleanup_spill=False
        )
        result_parallel = parallel.run_naive(200)
        result_serial = serial.run_naive(200)
        assert result_parallel.estimates.counts == result_serial.estimates.counts
        subdirs = sorted(os.listdir(tmp_path / "s"))
        assert len(subdirs) == 3
        assert all(name.startswith("coloring-") for name in subdirs)

    def test_spill_dirs_cleaned_up_by_default(self, graph, tmp_path):
        """Ensemble members close their stores: no leaked spill files."""
        import os

        config = MotivoConfig(k=4, seed=21, spill_dir=str(tmp_path / "s"))
        cleaned = PipelineEngine(graph, config, colorings=3, jobs=1)
        kept_config = MotivoConfig(
            k=4, seed=21, spill_dir=str(tmp_path / "s2")
        )
        kept = PipelineEngine(
            graph, kept_config, colorings=3, jobs=1, cleanup_spill=False
        )
        result = cleaned.run_naive(200)
        reference = kept.run_naive(200)
        # Cleanup must not change the estimates, only the leftovers.
        assert result.estimates.counts == reference.estimates.counts
        assert sorted(os.listdir(tmp_path / "s")) == []

    def test_explicit_seeds_respected(self, graph):
        config = MotivoConfig(k=4, seed=None)
        engine = PipelineEngine(graph, config, colorings=2)
        first = engine.run_naive(100, seeds=[11, 22])
        second = engine.run_naive(100, seeds=[11, 22])
        assert first.estimates.counts == second.estimates.counts
        assert first.seeds == [11, 22]


class TestFacadeIntegration:
    def test_averaged_naive_jobs_parity(self):
        graph = erdos_renyi(36, 100, rng=4)
        serial = MotivoCounter(graph, MotivoConfig(k=4, seed=77))
        fanned = MotivoCounter(graph, MotivoConfig(k=4, seed=77))
        estimates_serial = serial.averaged_naive(3, 300)
        estimates_fanned = fanned.averaged_naive(3, 300, jobs=2)
        assert estimates_serial.counts == estimates_fanned.counts
        assert estimates_serial.method == "naive-averaged"

    def test_legacy_kernel_config(self):
        graph = erdos_renyi(30, 90, rng=5)
        batched = MotivoCounter(graph, MotivoConfig(k=4, seed=5))
        legacy = MotivoCounter(
            graph, MotivoConfig(k=4, seed=5, kernel="legacy")
        )
        batched.build()
        legacy.build()
        assert batched.sample_naive(500).counts == pytest.approx(
            legacy.sample_naive(500).counts
        )


class TestInstrumentationTransport:
    def test_snapshot_roundtrip(self):
        instrumentation = Instrumentation()
        instrumentation.count("merge_ops", 5)
        with instrumentation.timer("buildup"):
            pass
        restored = Instrumentation.from_snapshot(instrumentation.snapshot())
        assert restored["merge_ops"] == 5
        assert restored.timings["buildup"] == pytest.approx(
            instrumentation.timings["buildup"]
        )

    def test_merged_classmethod(self):
        parts = []
        for _ in range(3):
            part = Instrumentation()
            part.count("merge_ops", 2)
            parts.append(part)
        assert Instrumentation.merged(parts)["merge_ops"] == 6
