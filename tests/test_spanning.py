"""Tests for spanning-tree counts (σ_i) and shape tables (σ_ij)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphlets.encoding import adjacency_sets, encode_edges, is_connected_graphlet
from repro.graphlets.enumerate import (
    clique_graphlet,
    cycle_graphlet,
    enumerate_graphlets,
    path_graphlet,
    star_graphlet,
)
from repro.graphlets.spanning import (
    SigmaCache,
    spanning_tree_count,
    spanning_tree_shape_counts,
)
from repro.treelets.encoding import canonical_free, spanning_tree_shapes
from repro.treelets.registry import TreeletRegistry


class TestKirchhoff:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 7])
    def test_cayley_cliques(self, k):
        assert spanning_tree_count(clique_graphlet(k), k) == k ** (k - 2)

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_cycles(self, k):
        assert spanning_tree_count(cycle_graphlet(k), k) == k

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
    def test_trees_have_one(self, k):
        assert spanning_tree_count(path_graphlet(k), k) == 1
        assert spanning_tree_count(star_graphlet(k), k) == 1

    def test_disconnected_is_zero(self):
        bits = encode_edges([(0, 1)], 4)
        assert spanning_tree_count(bits, 4) == 0

    def test_k1(self):
        assert spanning_tree_count(0, 1) == 1

    def test_complete_bipartite(self):
        # σ(K_{2,3}) = 2^(3-1) * 3^(2-1) = 12.
        k23 = encode_edges([(i, j) for i in range(2) for j in range(2, 5)], 5)
        assert spanning_tree_count(k23, 5) == 12


class TestShapeCounts:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_sums_to_kirchhoff_for_all_graphlets(self, k):
        registry = TreeletRegistry(k)
        for bits in enumerate_graphlets(k):
            table = spanning_tree_shape_counts(bits, k, registry)
            assert sum(table.values()) == spanning_tree_count(bits, k)

    def test_star_has_only_star_shape(self):
        k = 5
        table = spanning_tree_shape_counts(star_graphlet(k), k)
        assert len(table) == 1
        (shape, count), = table.items()
        assert count == 1
        # The single spanning tree is the star itself.
        from repro.treelets.encoding import encode_children

        star_shape = canonical_free(encode_children([0] * (k - 1)))
        assert shape == star_shape

    def test_cycle_spans_only_paths(self):
        k = 6
        table = spanning_tree_shape_counts(cycle_graphlet(k), k)
        from repro.treelets.encoding import encode_parent_vector

        path_shape = canonical_free(
            encode_parent_vector([-1, 0, 1, 2, 3, 4])
        )
        assert table == {path_shape: k}

    @pytest.mark.parametrize("k", [4, 5])
    def test_matches_independent_brute_force(self, k):
        """Cross-check the DP against explicit edge-subset enumeration."""
        for bits in enumerate_graphlets(k):
            dp_table = spanning_tree_shape_counts(bits, k)
            brute = spanning_tree_shapes(adjacency_sets(bits, k), k)
            assert dp_table == brute

    def test_shapes_are_canonical_free(self):
        k = 5
        for bits in enumerate_graphlets(k):
            for shape in spanning_tree_shape_counts(bits, k):
                assert canonical_free(shape) == shape


class TestSigmaCache:
    def test_memory_round_trip(self):
        cache = SigmaCache()
        bits = clique_graphlet(4)
        table = spanning_tree_shape_counts(bits, 4, cache=cache)
        assert cache.get(bits, 4) == table
        assert len(cache) == 1

    def test_disk_round_trip(self, tmp_path):
        directory = str(tmp_path / "sigma")
        cache = SigmaCache(directory)
        bits = cycle_graphlet(5)
        table = spanning_tree_shape_counts(bits, 5, cache=cache)
        cache.flush()

        fresh = SigmaCache(directory)
        assert fresh.get(bits, 5) == table

    def test_flush_without_directory_is_noop(self):
        cache = SigmaCache()
        cache.put(1, 3, {0: 1})
        cache.flush()  # must not raise

    def test_missing_entry(self, tmp_path):
        cache = SigmaCache(str(tmp_path))
        assert cache.get(99, 4) is None
