"""Tests for the treelet registry (DP scaffolding)."""

from __future__ import annotations

import pytest

from repro.errors import TreeletError
from repro.treelets.encoding import (
    beta,
    canonical_free,
    decomp,
    getsize,
    merge,
    treelet_key,
)
from repro.treelets.registry import TreeletRegistry, enumerate_rooted_treelets
from repro.util.combinatorics import free_tree_count, rooted_tree_count


class TestEnumeration:
    def test_levels_match_otter(self):
        levels = enumerate_rooted_treelets(8)
        for h, level in enumerate(levels, start=1):
            assert len(level) == rooted_tree_count(h)

    def test_levels_sorted_and_distinct(self):
        for level in enumerate_rooted_treelets(6):
            keys = [treelet_key(t) for t in level]
            assert keys == sorted(keys)
            assert len(set(level)) == len(level)

    def test_all_levels_have_correct_sizes(self):
        for h, level in enumerate(enumerate_rooted_treelets(6), start=1):
            assert all(getsize(t) == h for t in level)

    def test_bad_max_size(self):
        with pytest.raises(TreeletError):
            enumerate_rooted_treelets(0)


class TestRegistry:
    @pytest.fixture(scope="class", params=[3, 5, 6])
    def registry(self, request):
        return TreeletRegistry(request.param)

    def test_k_bounds(self):
        with pytest.raises(TreeletError):
            TreeletRegistry(1)
        with pytest.raises(TreeletError):
            TreeletRegistry(17)

    def test_total_treelets(self, registry):
        expected = sum(
            rooted_tree_count(h) for h in range(1, registry.k + 1)
        )
        assert registry.total_treelets == expected

    def test_decompositions_consistent(self, registry):
        for h in range(2, registry.k + 1):
            for t in registry.treelets_of_size(h):
                t_prime, t_second, beta_t = registry.decomposition(t)
                assert merge(t_prime, t_second) == t
                assert decomp(t) == (t_prime, t_second)
                assert beta(t) == beta_t

    def test_decomposition_unknown(self, registry):
        with pytest.raises(TreeletError):
            registry.decomposition(10**9)

    def test_singleton_has_no_decomposition(self, registry):
        with pytest.raises(TreeletError):
            registry.decomposition(0)

    def test_index_dense(self, registry):
        indices = [registry.index_of(t) for t in registry.all_treelets()]
        assert indices == list(range(registry.total_treelets))

    def test_contains(self, registry):
        for t in registry.all_treelets():
            assert registry.contains(t)
        assert not registry.contains(10**9)

    def test_size_bounds(self, registry):
        with pytest.raises(TreeletError):
            registry.treelets_of_size(0)
        with pytest.raises(TreeletError):
            registry.treelets_of_size(registry.k + 1)


class TestFreeShapes:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 7])
    def test_shape_count_matches_free_trees(self, k):
        registry = TreeletRegistry(k)
        assert registry.num_shapes == free_tree_count(k)

    def test_rooted_variants_partition_level(self):
        registry = TreeletRegistry(6)
        level = registry.treelets_of_size(6)
        total = sum(
            len(registry.rooted_variants(shape))
            for shape in registry.free_shapes
        )
        assert total == len(level)

    def test_shape_of_rooted_consistent(self):
        registry = TreeletRegistry(5)
        for t in registry.treelets_of_size(5):
            shape = registry.shape_of_rooted[t]
            assert canonical_free(t) == shape
            assert t in registry.rooted_variants(shape)

    def test_shape_index(self):
        registry = TreeletRegistry(5)
        for i, shape in enumerate(registry.free_shapes):
            assert registry.shape_index[shape] == i

    def test_unknown_shape(self):
        registry = TreeletRegistry(4)
        with pytest.raises(TreeletError):
            registry.rooted_variants(12345)

    def test_distinct_rootings_star(self):
        registry = TreeletRegistry(5)
        # The 5-star has 2 orbit classes: center and leaves.
        from repro.treelets.encoding import encode_children

        star = encode_children([0, 0, 0, 0])
        assert registry.distinct_rootings(star) == 2
