"""Cross-module property-based tests (hypothesis) on the core invariants.

These tie together subsystems that were unit-tested in isolation: the DP
against Kirchhoff identities, classification against spanning-tree
structure, and the σ tables against the sampling probabilities they feed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.urn import TreeletUrn
from repro.errors import SamplingError
from repro.exact.brute import brute_force_colorful_treelet_total
from repro.exact.esu import exact_colorful_counts
from repro.graph.graph import Graph
from repro.graphlets.spanning import spanning_tree_count, spanning_tree_shape_counts
from repro.treelets.encoding import canonical_free
from repro.treelets.registry import TreeletRegistry


@st.composite
def small_graph(draw, min_n=6, max_n=12):
    """A random connected-ish simple graph."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    # Spanning-tree backbone guarantees connectivity.
    edges = [
        (draw(st.integers(min_value=0, max_value=v - 1)), v)
        for v in range(1, n)
    ]
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=2 * n,
        )
    )
    edges.extend((u, v) for u, v in extra if u != v)
    return Graph.from_edges(edges, n=n)


@st.composite
def colored_graph(draw, k):
    graph = draw(small_graph())
    colors = [
        draw(st.integers(min_value=0, max_value=k - 1))
        for _ in range(graph.num_vertices)
    ]
    return graph, ColoringScheme.fixed(colors, k=k)


class TestDpKirchhoffIdentity:
    @given(colored_graph(k=3))
    @settings(max_examples=30, deadline=None)
    def test_total_treelets_k3(self, data):
        graph, coloring = data
        table = build_table(graph, coloring, zero_rooting=True)
        expected = brute_force_colorful_treelet_total(graph, 3, coloring)
        assert table.root_weights().sum() == pytest.approx(expected)

    @given(colored_graph(k=4))
    @settings(max_examples=15, deadline=None)
    def test_total_treelets_k4(self, data):
        graph, coloring = data
        table = build_table(graph, coloring, zero_rooting=True)
        expected = brute_force_colorful_treelet_total(graph, 4, coloring)
        assert table.root_weights().sum() == pytest.approx(expected)


class TestUrnSigmaConsistency:
    @given(colored_graph(k=4))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_shape_totals_match_sigma_weighted_truth(self, data):
        """r_j = Σ_i c_i σ_ij: the urn's per-shape totals must equal the
        σ-weighted exact colorful graphlet counts."""
        graph, coloring = data
        k = 4
        table = build_table(graph, coloring, zero_rooting=True)
        try:
            urn = TreeletUrn(graph, table, coloring)
        except SamplingError:
            return  # no colorful treelets under this coloring
        truth = exact_colorful_counts(graph, k, coloring)
        registry = urn.registry
        expected = {shape: 0.0 for shape in registry.free_shapes}
        for bits, count in truth.items():
            for shape, sigma in spanning_tree_shape_counts(bits, k).items():
                expected[shape] += count * sigma
        for shape in registry.free_shapes:
            assert urn.shape_total(shape) == pytest.approx(
                expected[shape]
            ), shape

    @given(colored_graph(k=4))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_total_is_sigma_weighted_sum(self, data):
        """t = Σ_i c_i σ_i — the denominator of the naive estimator."""
        graph, coloring = data
        k = 4
        table = build_table(graph, coloring, zero_rooting=True)
        truth = exact_colorful_counts(graph, k, coloring)
        expected = sum(
            count * spanning_tree_count(bits, k)
            for bits, count in truth.items()
        )
        assert table.root_weights().sum() == pytest.approx(expected)


class TestSampledCopiesAreConsistent:
    @given(colored_graph(k=4), st.integers(min_value=0, max_value=2**31))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_shape_samples_span_compatible_graphlets(self, data, seed):
        """A copy drawn via sample_shape(T) must land on a graphlet whose
        σ table actually contains T — the core AGS soundness property."""
        graph, coloring = data
        k = 4
        table = build_table(graph, coloring, zero_rooting=True)
        try:
            urn = TreeletUrn(graph, table, coloring)
        except SamplingError:
            return
        from repro.sampling.occurrences import GraphletClassifier

        classifier = GraphletClassifier(graph, k)
        rng = np.random.default_rng(seed)
        for shape in urn.registry.free_shapes:
            if urn.shape_total(shape) <= 0:
                continue
            for _ in range(5):
                vertices, treelet, _ = urn.sample_shape(shape, rng)
                assert canonical_free(treelet) == shape
                bits = classifier.classify(vertices)
                sigma = spanning_tree_shape_counts(bits, k)
                assert sigma.get(shape, 0) > 0


class TestRegistryClosure:
    @pytest.mark.parametrize("k", [4, 5, 6])
    def test_sigma_shapes_are_registry_shapes(self, k):
        """Every σ_ij shape of every graphlet is a registered free shape."""
        from repro.graphlets.enumerate import enumerate_graphlets

        registry = TreeletRegistry(k)
        known = set(registry.free_shapes)
        for bits in enumerate_graphlets(k):
            for shape in spanning_tree_shape_counts(bits, k, registry):
                assert shape in known
