"""Unit and property tests for repro.util.bitops."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    bits_to_string,
    concat_bits,
    extract_bits,
    highest_set_bit,
    iter_set_bits,
    iter_subsets,
    iter_subsets_of_size,
    lowest_set_bit,
    masks_of_size,
    popcount,
    reverse_bits,
    string_to_bits,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_powers_of_two(self):
        for shift in range(70):
            assert popcount(1 << shift) == 1

    def test_all_ones(self):
        assert popcount((1 << 13) - 1) == 13

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(st.integers(min_value=0, max_value=2**80))
    def test_matches_bin(self, x):
        assert popcount(x) == bin(x).count("1")


class TestSetBitHelpers:
    def test_lowest(self):
        assert lowest_set_bit(0b1011000) == 3

    def test_highest(self):
        assert highest_set_bit(0b1011000) == 6

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            lowest_set_bit(0)
        with pytest.raises(ValueError):
            highest_set_bit(0)

    @given(st.integers(min_value=1, max_value=2**60))
    def test_iter_set_bits_reconstructs(self, x):
        assert sum(1 << b for b in iter_set_bits(x)) == x

    @given(st.integers(min_value=1, max_value=2**60))
    def test_iter_set_bits_ascending(self, x):
        bits = list(iter_set_bits(x))
        assert bits == sorted(bits)


class TestExtractConcat:
    def test_extract_middle(self):
        # String 10110 (len 5): positions 1..3 are '011'.
        value, length = string_to_bits("10110")
        assert extract_bits(value, 1, 3, length) == 0b011

    def test_extract_bounds(self):
        with pytest.raises(ValueError):
            extract_bits(0b101, 1, 3, 3)

    def test_concat_round_trip(self):
        value, length = concat_bits((0b1, 1), (0b01, 2), (0b110, 3))
        assert bits_to_string(value, length) == "101110"

    def test_concat_rejects_overflow(self):
        with pytest.raises(ValueError):
            concat_bits((0b111, 2))

    @given(
        st.lists(
            st.integers(min_value=0, max_value=127).map(lambda v: (v, 7)),
            min_size=1,
            max_size=6,
        )
    )
    def test_concat_then_extract(self, parts):
        value, length = concat_bits(*parts)
        for index, (part, part_length) in enumerate(parts):
            start = index * 7
            assert extract_bits(value, start, part_length, length) == part


class TestSubsetIteration:
    def test_subsets_count(self):
        mask = 0b10110
        assert len(list(iter_subsets(mask))) == 2 ** popcount(mask)

    def test_subsets_are_subsets(self):
        mask = 0b110101
        for sub in iter_subsets(mask):
            assert sub & ~mask == 0

    def test_subsets_of_size_counts(self):
        from math import comb

        mask = 0b1111101
        for size in range(0, 8):
            got = list(iter_subsets_of_size(mask, size))
            assert len(got) == comb(popcount(mask), size)
            assert all(popcount(s) == size for s in got)
            assert all(s & ~mask == 0 for s in got)
            assert len(set(got)) == len(got)

    def test_size_zero(self):
        assert list(iter_subsets_of_size(0b101, 0)) == [0]

    def test_negative_size(self):
        with pytest.raises(ValueError):
            list(iter_subsets_of_size(0b1, -1))

    def test_masks_of_size(self):
        masks = masks_of_size(5, 2)
        assert len(masks) == 10
        assert all(popcount(m) == 2 for m in masks)


class TestStrings:
    def test_round_trip(self):
        for text in ("", "1", "0", "101100", "11110000"):
            assert bits_to_string(*string_to_bits(text)) == text

    def test_bad_text(self):
        with pytest.raises(ValueError):
            string_to_bits("10a1")

    def test_reverse(self):
        value, length = string_to_bits("1101000")
        assert bits_to_string(reverse_bits(value, length), length) == "0001011"

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_reverse_involution(self, x):
        assert reverse_bits(reverse_bits(x, 20), 20) == x
