"""Tests for reference sequences and coloring probabilities."""

from __future__ import annotations

from math import factorial

import pytest

from repro.util.combinatorics import (
    biased_colorful_probability,
    binomial,
    colorful_probability,
    connected_graph_count,
    free_tree_count,
    rooted_tree_count,
)


class TestTreeCounts:
    def test_rooted_sequence(self):
        # OEIS A000081.
        expected = [0, 1, 1, 2, 4, 9, 20, 48, 115, 286, 719]
        assert [rooted_tree_count(n) for n in range(11)] == expected

    def test_free_sequence(self):
        # OEIS A000055.
        expected = [0, 1, 1, 1, 2, 3, 6, 11, 23, 47, 106]
        assert [free_tree_count(n) for n in range(11)] == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            rooted_tree_count(-1)
        with pytest.raises(ValueError):
            free_tree_count(-2)


class TestGraphCensus:
    def test_known_values(self):
        # The paper: 21 distinct 5-graphlets, 112 for 6, >10k for 8.
        assert connected_graph_count(5) == 21
        assert connected_graph_count(6) == 112
        assert connected_graph_count(7) == 853
        assert connected_graph_count(8) == 11117

    def test_paper_k10_claim(self):
        # "for k = 10 over 11.7M" (§1).
        assert connected_graph_count(10) > 11_700_000

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            connected_graph_count(0)
        with pytest.raises(ValueError):
            connected_graph_count(11)


class TestBinomial:
    def test_triangle_row(self):
        assert [binomial(5, k) for k in range(6)] == [1, 5, 10, 10, 5, 1]

    def test_outside_triangle(self):
        assert binomial(3, 5) == 0
        assert binomial(3, -1) == 0
        assert binomial(-1, 0) == 0


class TestColorfulProbability:
    def test_uniform_formula(self):
        for k in range(1, 9):
            assert colorful_probability(k) == pytest.approx(
                factorial(k) / k**k
            )

    def test_uniform_k5(self):
        # 5!/5^5 = 120/3125.
        assert colorful_probability(5) == pytest.approx(0.0384)

    def test_biased_reduces_to_uniform(self):
        for k in range(2, 9):
            assert biased_colorful_probability(k, 1.0 / k) == pytest.approx(
                colorful_probability(k)
            )

    def test_biased_monotone_in_lambda(self):
        # Smaller lambda -> smaller colorful probability (for lam <= 1/k).
        k = 5
        probabilities = [
            biased_colorful_probability(k, lam)
            for lam in (0.02, 0.05, 0.1, 0.2)
        ]
        assert probabilities == sorted(probabilities)

    def test_biased_bounds(self):
        with pytest.raises(ValueError):
            biased_colorful_probability(5, 0.0)
        with pytest.raises(ValueError):
            biased_colorful_probability(5, 0.3)  # > 1/(k-1)

    def test_k1_edge_cases(self):
        assert colorful_probability(1) == pytest.approx(1.0)
        assert biased_colorful_probability(1, 0.5) == pytest.approx(1.0)

    def test_positive_k_required(self):
        with pytest.raises(ValueError):
            colorful_probability(0)
