"""Tests for the fused descent kernel and artifact-cached plans.

The fused one-pass kernel must stay **bit-identical** to the per-sample
recursion (``method="loop"``) across the whole supported range: every
k in 2..8, degenerate colorings, zero-rooting on and off, dense and
succinct table layouts.  On top of the kernel itself: compiled descent
programs must serialize losslessly, plan-carrying artifacts must reopen
with **zero** plan compilation, stale or corrupted plans must fail
loud (never silently resample from the wrong plan), old artifacts
without a plan must fall back to recompiling, and the gathered-row
budget must degrade to transient rebuilds without changing a single
sample.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.artifacts import ArtifactCache, open_table, save_table
from repro.artifacts.table_artifact import PLAN_NAME
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.descent import (
    DescentProgram,
    compile_program,
    table_keys_digest,
)
from repro.colorcoding.urn import DEFAULT_DESCENT_CACHE_BYTES, TreeletUrn
from repro.errors import ArtifactError, SamplingError
from repro.graph.generators import erdos_renyi, path_graph, star_graph
from repro.motivo import MotivoConfig, MotivoCounter
from repro.serve import SamplingService
from repro.treelets.registry import TreeletRegistry


def make_urn(graph, k, seed=None, coloring=None, layout="dense",
             zero_rooting=True, **kwargs):
    coloring = coloring or ColoringScheme.uniform(
        graph.num_vertices, k, rng=seed
    )
    table = build_table(
        graph, coloring, zero_rooting=zero_rooting, layout=layout
    )
    return TreeletUrn(graph, table, coloring, **kwargs)


def assert_batches_equal(a, b):
    for x, y, name in zip(a, b, ("vertices", "treelets", "masks")):
        assert np.array_equal(x, y), name


# (graph factory, k, coloring seed) — k sweeps the whole supported
# range; k=7/8 on graphs small enough to keep the build quick.
K_MATRIX = [
    (lambda: erdos_renyi(40, 110, rng=2), 2, 21),
    (lambda: star_graph(30), 3, 22),
    (lambda: erdos_renyi(40, 100, rng=4), 4, 23),
    (lambda: erdos_renyi(60, 180, rng=3), 5, 24),
    (lambda: erdos_renyi(40, 120, rng=6), 6, 25),
    (lambda: erdos_renyi(26, 70, rng=7), 7, 26),
    (lambda: erdos_renyi(24, 62, rng=8), 8, 27),
]


class TestFusedLoopEquivalence:
    @pytest.mark.parametrize("factory,k,seed", K_MATRIX)
    def test_all_k_bit_identical(self, factory, k, seed):
        urn = make_urn(factory(), k, seed=seed)
        for draw_seed in (0, 173):
            assert_batches_equal(
                urn.sample_batch(211, np.random.default_rng(draw_seed)),
                urn.sample_batch(
                    211, np.random.default_rng(draw_seed), method="loop"
                ),
            )

    @pytest.mark.parametrize("layout", ["dense", "succinct"])
    @pytest.mark.parametrize("zero_rooting", [True, False])
    def test_layouts_and_zero_rooting(self, layout, zero_rooting):
        urn = make_urn(
            erdos_renyi(50, 140, rng=9), 5, seed=31,
            layout=layout, zero_rooting=zero_rooting,
        )
        assert_batches_equal(
            urn.sample_batch(301, np.random.default_rng(12)),
            urn.sample_batch(
                301, np.random.default_rng(12), method="loop"
            ),
        )

    def test_degenerate_coloring(self):
        """A fixed repeating coloring realizes only a sliver of the key
        universe; the compiled program must still cover every reachable
        (treelet, mask) state."""
        coloring = ColoringScheme.fixed([0, 1, 2, 3] * 3, k=4)
        urn = make_urn(path_graph(12), 4, coloring=coloring)
        assert_batches_equal(
            urn.sample_batch(200, np.random.default_rng(5)),
            urn.sample_batch(
                200, np.random.default_rng(5), method="loop"
            ),
        )

    def test_budget_fallback_bit_identical_and_counted(self):
        """A starved gathered-row budget degrades to transient rebuilds:
        slower, counted in the instrumentation, and sample-for-sample
        identical to the cached path."""
        graph = erdos_renyi(60, 180, rng=3)
        coloring = ColoringScheme.uniform(graph.num_vertices, 5, rng=11)
        table = build_table(graph, coloring)
        roomy = TreeletUrn(graph, table, coloring)
        starved = TreeletUrn(
            graph, table, coloring, descent_cache_bytes=1
        )
        assert starved._gathered_row_budget == 16  # the floor
        assert_batches_equal(
            roomy.sample_batch(400, np.random.default_rng(8)),
            starved.sample_batch(400, np.random.default_rng(8)),
        )
        inst = starved.instrumentation
        assert inst["gathered_budget_fallbacks"] > 0
        assert inst["gathered_transient_builds"] > 0
        assert roomy.instrumentation["gathered_budget_fallbacks"] == 0


def _foreign_program():
    """A valid k=4 program whose realized key set matches no dense
    k=4 table (degenerate fixed coloring, succinct layout)."""
    graph = path_graph(12)
    coloring = ColoringScheme.fixed([0, 1, 2, 3] * 3, k=4)
    table = build_table(graph, coloring, layout="succinct")
    return compile_program(TreeletRegistry(4), table)


class TestDescentProgram:
    def test_compile_is_deterministic(self):
        graph = erdos_renyi(40, 100, rng=4)
        coloring = ColoringScheme.uniform(graph.num_vertices, 4, rng=12)
        table = build_table(graph, coloring)
        registry = TreeletRegistry(4)
        first = compile_program(registry, table)
        second = compile_program(registry, table)
        for name, _ in DescentProgram._ARRAY_FIELDS:
            assert np.array_equal(
                getattr(first, name), getattr(second, name)
            ), name
        assert first.table_digest == second.table_digest

    def test_arrays_roundtrip(self):
        graph = erdos_renyi(40, 100, rng=4)
        coloring = ColoringScheme.uniform(graph.num_vertices, 4, rng=12)
        table = build_table(graph, coloring)
        program = compile_program(TreeletRegistry(4), table)
        restored = DescentProgram.from_arrays(program.to_arrays())
        assert restored.k == program.k
        assert restored.table_digest == program.table_digest
        for name, _ in DescentProgram._ARRAY_FIELDS:
            assert np.array_equal(
                getattr(restored, name), getattr(program, name)
            ), name
        restored.validate_for(table, digest=table_keys_digest(table))

    def test_program_is_key_structure_only(self):
        """Two colorings of one graph realize the same dense key universe,
        so their programs are interchangeable (counts are read from the
        table at sample time, never baked into the plan)."""
        graph = erdos_renyi(40, 100, rng=4)
        other = ColoringScheme.uniform(graph.num_vertices, 4, rng=99)
        mine = ColoringScheme.uniform(graph.num_vertices, 4, rng=12)
        program = compile_program(
            TreeletRegistry(4), build_table(graph, other)
        )
        table = build_table(graph, mine)
        assert program.table_digest == table_keys_digest(table)
        urn = TreeletUrn(graph, table, mine, program=program)
        assert_batches_equal(
            urn.sample_batch(150, np.random.default_rng(3)),
            urn.sample_batch(
                150, np.random.default_rng(3), method="loop"
            ),
        )

    def test_mismatched_program_rejected(self):
        """A program from a table with a different realized key set (a
        degenerate succinct build) must not validate."""
        graph = erdos_renyi(40, 100, rng=4)
        mine = ColoringScheme.uniform(graph.num_vertices, 4, rng=12)
        foreign = _foreign_program()
        table = build_table(graph, mine)
        with pytest.raises(ValueError):
            foreign.validate_for(table, digest=table_keys_digest(table))
        with pytest.raises(SamplingError):
            TreeletUrn(graph, table, mine, program=foreign)

    def test_wrong_k_program_rejected_by_urn(self):
        graph = erdos_renyi(40, 100, rng=4)
        c3 = ColoringScheme.uniform(graph.num_vertices, 3, rng=1)
        c4 = ColoringScheme.uniform(graph.num_vertices, 4, rng=1)
        program3 = compile_program(
            TreeletRegistry(3), build_table(graph, c3)
        )
        table4 = build_table(graph, c4)
        with pytest.raises(SamplingError):
            TreeletUrn(graph, table4, c4, program=program3)


@pytest.fixture()
def built_counter(tmp_path):
    graph = erdos_renyi(60, 180, rng=3)
    counter = MotivoCounter(graph, MotivoConfig(k=4, seed=17))
    counter.build()
    return graph, counter


class TestArtifactCachedPlans:
    def test_save_records_plan_and_reopen_skips_compile(
        self, built_counter, tmp_path
    ):
        graph, counter = built_counter
        directory = str(tmp_path / "artifact")
        counter.save_artifact(directory)
        manifest = json.load(
            open(os.path.join(directory, "manifest.json"))
        )
        assert "descent_plan" in manifest
        assert manifest["descent_plan"]["file"] == PLAN_NAME
        # Plan bytes are real but excluded from the payload accounting.
        assert manifest["descent_plan"]["bytes"] == os.path.getsize(
            os.path.join(directory, PLAN_NAME)
        )

        warm = MotivoCounter.from_artifact(graph, directory)
        # The adopted program is there before any draw...
        assert warm.urn._program is not None
        before = warm.instrumentation["descent_plan_compiles"]
        reference = counter.sample_naive(500)
        estimates = warm.sample_naive(500)
        # ...and sampling compiled nothing on top of it (the manifest
        # snapshot already carries the save-time compile, hence deltas).
        assert (
            warm.instrumentation["descent_plan_compiles"] - before == 0
        )
        assert estimates.counts == reference.counts

    def test_verify_covers_plan_blob(self, built_counter, tmp_path):
        graph, counter = built_counter
        directory = str(tmp_path / "artifact")
        counter.save_artifact(directory)
        artifact = open_table(directory, graph)
        artifact.verify()  # digests include the plan blob
        with open(os.path.join(directory, PLAN_NAME), "r+b") as blob:
            blob.seek(0)
            blob.write(b"\x00" * 8)
        with pytest.raises(ArtifactError):
            open_table(directory, graph)

    def test_absent_plan_falls_back_to_recompile(
        self, built_counter, tmp_path
    ):
        """Format-v1-style artifacts (no plan entry) still open; the urn
        compiles lazily, bit-identically to the plan-carrying open."""
        graph, counter = built_counter
        directory = str(tmp_path / "artifact")
        counter.save_artifact(directory)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(manifest_path))
        del manifest["descent_plan"]
        with open(manifest_path, "w") as out:
            json.dump(manifest, out)
        os.remove(os.path.join(directory, PLAN_NAME))

        artifact = open_table(directory, graph)
        assert artifact.descent_program is None
        warm = MotivoCounter.from_artifact(graph, directory)
        assert warm.urn._program is None
        before = warm.instrumentation["descent_plan_compiles"]
        warm.sample_naive(200)
        assert (
            warm.instrumentation["descent_plan_compiles"] - before == 1
        )

    def test_stale_plan_fails_loud(self, built_counter, tmp_path):
        """A plan blob from a different table must never be sampled
        from — digest skew is an ArtifactError, not a fallback."""
        graph, counter = built_counter
        directory = str(tmp_path / "artifact")
        counter.save_artifact(directory)
        foreign = _foreign_program()
        plan_path = os.path.join(directory, PLAN_NAME)
        np.savez(plan_path, **foreign.to_arrays())
        # Keep the manifest digest consistent so only staleness trips.
        from repro.artifacts.table_artifact import file_digest

        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["descent_plan"]["digest"] = file_digest(plan_path)
        manifest["descent_plan"]["bytes"] = os.path.getsize(plan_path)
        with open(manifest_path, "w") as out:
            json.dump(manifest, out)
        with pytest.raises(ArtifactError, match="stale descent plan"):
            open_table(directory, graph)

    def test_unknown_plan_version_fails_loud(
        self, built_counter, tmp_path
    ):
        graph, counter = built_counter
        directory = str(tmp_path / "artifact")
        counter.save_artifact(directory)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["descent_plan"]["plan_format_version"] = 99
        with open(manifest_path, "w") as out:
            json.dump(manifest, out)
        with pytest.raises(ArtifactError, match="plan"):
            open_table(directory, graph)

    def test_saving_mismatched_program_rejected(
        self, built_counter, tmp_path
    ):
        graph, counter = built_counter
        foreign = _foreign_program()
        with pytest.raises(ArtifactError, match="does not match"):
            save_table(
                str(tmp_path / "bad"),
                counter.urn.table,
                counter.coloring,
                graph,
                descent_program=foreign,
            )


class TestConfigThreading:
    def test_config_field_reaches_urn_and_manifest(self, tmp_path):
        graph = erdos_renyi(50, 140, rng=9)
        config = MotivoConfig(k=4, seed=5, descent_cache_bytes=123_456)
        assert config.build_params()["descent_cache_bytes"] == 123_456
        counter = MotivoCounter(graph, config)
        counter.build()
        assert counter.urn.descent_cache_bytes == 123_456

        directory = str(tmp_path / "artifact")
        counter.save_artifact(directory)
        warm = MotivoCounter.from_artifact(graph, directory)
        assert warm.config.descent_cache_bytes == 123_456
        assert warm.urn.descent_cache_bytes == 123_456

    def test_default_budget(self):
        graph = erdos_renyi(30, 80, rng=5)
        counter = MotivoCounter(graph, MotivoConfig(k=3, seed=2))
        counter.build()
        assert (
            counter.urn.descent_cache_bytes == DEFAULT_DESCENT_CACHE_BYTES
        )

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["count", "g.txt", "--descent-cache-bytes", "4096"]
        )
        assert args.descent_cache_bytes == 4096
        args = parser.parse_args(
            ["build", "g.txt", "-o", "out", "--descent-cache-bytes", "8192"]
        )
        assert args.descent_cache_bytes == 8192


class TestServeIntegration:
    def test_warm_service_skips_plan_compile_and_reports_stats(
        self, tmp_path
    ):
        graph = erdos_renyi(60, 180, rng=3)
        root = str(tmp_path / "cache")
        counter = MotivoCounter(
            graph, MotivoConfig(k=4, seed=17, artifact_dir=root)
        )
        counter.build()
        with SamplingService(root) as service:
            service.add_graph(graph)
            key = ArtifactCache(root).entries()[0].key
            service.count(artifact=key, samples=400)
            handle = service.open(key)
            # The handle's urn adopted the artifact's program: zero
            # compiles on this side of the process boundary.
            assert handle.urn._program is not None
            stats = handle.sampling_stats()
            assert stats.get("count.descent_plan_compiles", 0) == 0
            assert stats["count.classified"] >= 400
            health = service.healthz()
            sampling = health["sampling"]
            assert sampling["plan_compiles"] == 0
            assert sampling["classified"] >= 400
            assert sampling["gather_builds"] > 0
            assert sampling["descent_seconds"] >= 0.0
