"""Tests for the LayerStore backends and the combination plans."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import TableError
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.plans import (
    build_level_plan,
    compile_plans,
    full_universe_keys,
    level_plans,
)
from repro.graph.generators import erdos_renyi
from repro.table.flush import SpillStore
from repro.table.layer_store import (
    InMemoryStore,
    ShardedStore,
    SpillLayerStore,
    resolve_store,
)
from repro.treelets.encoding import getsize
from repro.treelets.registry import TreeletRegistry
from repro.util.bitops import popcount


@pytest.fixture()
def workload():
    graph = erdos_renyi(30, 90, rng=21)
    coloring = ColoringScheme.uniform(30, 4, rng=22)
    return graph, coloring


class TestResolveStore:
    def test_default_is_in_memory(self):
        assert isinstance(resolve_store(None, None), InMemoryStore)

    def test_spill_shorthand(self, tmp_path):
        spill = SpillStore(str(tmp_path))
        store = resolve_store(None, spill)
        assert isinstance(store, SpillLayerStore)
        assert store.spill is spill

    def test_both_rejected(self, tmp_path):
        with pytest.raises(TableError):
            resolve_store(InMemoryStore(), SpillStore(str(tmp_path)))


class TestBackendsAgree:
    def test_all_backends_same_table(self, tmp_path, workload):
        graph, coloring = workload
        reference = build_table(graph, coloring, store=InMemoryStore())
        spilled = build_table(
            graph, coloring,
            store=SpillLayerStore(SpillStore(str(tmp_path / "spill"))),
        )
        sharded = build_table(
            graph, coloring,
            store=ShardedStore(3, directory=str(tmp_path / "shards")),
        )
        for h in range(1, 5):
            for other in (spilled, sharded):
                assert reference.layer(h).keys == other.layer(h).keys
                assert np.array_equal(
                    reference.layer(h).counts, np.asarray(other.layer(h).counts)
                )

    def test_spill_store_not_resident(self, tmp_path):
        assert SpillLayerStore(SpillStore(str(tmp_path))).resident is False
        assert InMemoryStore().resident is True
        assert ShardedStore(2).resident is True


class TestShardedStore:
    def test_shard_files_and_roundtrip(self, tmp_path, workload):
        graph, coloring = workload
        store = ShardedStore(4, directory=str(tmp_path))
        table = build_table(graph, coloring, store=store)
        assert store.sizes() == [1, 2, 3, 4]
        for size in store.sizes():
            layer = table.layer(size)
            rebuilt = []
            for shard in range(4):
                keys, (lo, hi), counts = store.load_shard(size, shard)
                assert keys == layer.keys
                assert counts.shape == (layer.num_keys, hi - lo)
                rebuilt.append(np.asarray(counts))
            assert np.array_equal(np.hstack(rebuilt), layer.counts)
        assert store.bytes_on_disk() > 0

    def test_bounds_cover_all_vertices(self):
        store = ShardedStore(3)
        bounds = store.shard_bounds(10)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert all(bounds[i] <= bounds[i + 1] for i in range(3))

    def test_memory_only_shards_reject_load(self, workload):
        graph, coloring = workload
        store = ShardedStore(2)
        build_table(graph, coloring, store=store)
        with pytest.raises(TableError):
            store.load_shard(2, 0)

    def test_validation(self, tmp_path):
        with pytest.raises(TableError):
            ShardedStore(0)
        store = ShardedStore(2, directory=str(tmp_path))
        with pytest.raises(TableError):
            store.load_shard(3, 0)


class TestPlans:
    @pytest.fixture(scope="class")
    def registry(self):
        return TreeletRegistry(5)

    def test_decompositions_export(self, registry):
        rows = registry.decompositions_of_size(3)
        assert len(rows) == len(registry.treelets_of_size(3))
        for treelet, t_prime, t_second, beta in rows:
            assert registry.decomposition(treelet) == (t_prime, t_second, beta)
        with pytest.raises(Exception):
            registry.decompositions_of_size(1)

    def test_level_plan_covers_universe(self, registry):
        for h in range(2, 6):
            plan = build_level_plan(registry, h)
            expected = {
                (t, mask)
                for t in registry.treelets_of_size(h)
                for mask in range(1 << registry.k)
                if popcount(mask) == h
            }
            assert set(plan.out_keys) == expected
            assert plan.betas.shape == (len(plan.out_keys),)
            assert np.all(plan.betas >= 1)

    def test_pair_sizes_consistent(self, registry):
        for h in range(2, 6):
            plan = build_level_plan(registry, h)
            for group in plan.groups:
                assert group.h_prime + group.h_second == h
                for key in group.prime_keys:
                    assert getsize(key[0]) == group.h_prime
                for key in group.second_keys:
                    assert getsize(key[0]) == group.h_second
                # Slots are non-decreasing with contiguous runs.
                slots = group.out_slots
                assert np.all(np.diff(slots) >= 0)

    def test_compiled_groups_partition_universe(self, registry):
        for level in compile_plans(registry).values():
            covered = np.concatenate([g.out_rows for g in level.groups])
            assert sorted(covered.tolist()) == list(range(len(level.keys)))
            assert list(level.keys) == sorted(level.keys)

    def test_selection_luts_match_pairs(self, registry):
        compiled = compile_plans(registry)
        for level in compiled.values():
            universe = full_universe_keys(registry, level.size)
            assert list(level.keys) == universe
            for group in level.groups:
                if group.h_prime == 1:
                    assert group.select_lut is not None
                    assert group.color_slots is not None
                    sentinel = len(
                        full_universe_keys(registry, group.h_second)
                    )
                    for (slots_c, rows_c) in group.color_slots:
                        assert np.all(rows_c < sentinel)
                else:
                    assert group.select_lut is None

    def test_plans_cached_per_registry(self, registry):
        assert level_plans(registry) is level_plans(registry)
        assert compile_plans(registry) is compile_plans(registry)


class TestSpillFinalize:
    def test_sort_pass_runs_through_store(self, tmp_path, workload):
        graph, coloring = workload
        spill = SpillStore(str(tmp_path / "s"))
        from repro.util.instrument import Instrumentation

        instrumentation = Instrumentation()
        table = build_table(
            graph, coloring, spill=spill, instrumentation=instrumentation
        )
        assert "sort_pass" in instrumentation.timings
        assert isinstance(table.layer(4).counts, np.memmap)
        assert os.path.exists(os.path.join(str(tmp_path / "s"), "manifest.json"))
