"""Tests for the batched sampling engine.

The load-bearing property: for a fixed seed, the vectorized descent
(``method="batched"``) and the per-sample recursion (``method="loop"``)
read the same uniform matrix and must return **bit-identical** samples —
on ordinary graphs, hub graphs, degenerate colorings whose layers realize
only part of the key universe, and the k=2 edge case.  On top of that:
batched classification must agree element-wise with the scalar
classifier, the rewired estimators must be deterministic per
``(seed, batch_size)``, and AGS chunked draws must reproduce themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.descent import compile_descent
from repro.colorcoding.urn import TreeletUrn
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.sampling.ags import ags_estimate
from repro.sampling.naive import naive_estimate, naive_hit_counts
from repro.sampling.occurrences import GraphletClassifier
from repro.treelets.registry import TreeletRegistry


def make_urn(graph, k, seed=None, coloring=None, **kwargs):
    coloring = coloring or ColoringScheme.uniform(
        graph.num_vertices, k, rng=seed
    )
    table = build_table(graph, coloring)
    return TreeletUrn(graph, table, coloring, **kwargs)


def assert_batches_equal(a, b):
    for x, y, name in zip(a, b, ("vertices", "treelets", "masks")):
        assert np.array_equal(x, y), name


PIPELINES = [
    # (graph factory, k, coloring seed or fixed colors)
    (lambda: erdos_renyi(60, 180, rng=3), 5, 11),
    (lambda: erdos_renyi(40, 100, rng=4), 4, 12),
    (lambda: star_graph(30), 3, 13),  # hub-dominated
    (lambda: erdos_renyi(30, 80, rng=5), 2, 15),  # k=2 edge case
]


class TestBatchLoopEquivalence:
    @pytest.mark.parametrize("factory,k,seed", PIPELINES)
    def test_sample_batch_bit_identical(self, factory, k, seed):
        urn = make_urn(factory(), k, seed=seed)
        for draw_seed in (0, 99, 2024):
            assert_batches_equal(
                urn.sample_batch(257, np.random.default_rng(draw_seed)),
                urn.sample_batch(
                    257, np.random.default_rng(draw_seed), method="loop"
                ),
            )

    @pytest.mark.parametrize("factory,k,seed", PIPELINES)
    def test_sample_shape_batch_bit_identical(self, factory, k, seed):
        urn = make_urn(factory(), k, seed=seed)
        for shape in urn.registry.free_shapes:
            if urn.shape_total(shape) <= 0:
                continue
            assert_batches_equal(
                urn.sample_shape_batch(
                    shape, 150, np.random.default_rng(7)
                ),
                urn.sample_shape_batch(
                    shape, 150, np.random.default_rng(7), method="loop"
                ),
            )

    def test_degenerate_coloring_bit_identical(self):
        """A fixed repeating coloring on a path realizes only a sliver of
        the key universe — the split enumeration must still agree."""
        coloring = ColoringScheme.fixed([0, 1, 2, 0, 1, 2, 0, 1, 2], k=3)
        urn = make_urn(path_graph(9), 3, coloring=coloring)
        assert_batches_equal(
            urn.sample_batch(300, np.random.default_rng(5)),
            urn.sample_batch(300, np.random.default_rng(5), method="loop"),
        )

    def test_without_zero_rooting(self):
        graph = erdos_renyi(40, 110, rng=8)
        coloring = ColoringScheme.uniform(40, 4, rng=9)
        table = build_table(graph, coloring, zero_rooting=False)
        urn = TreeletUrn(graph, table, coloring)
        assert_batches_equal(
            urn.sample_batch(300, np.random.default_rng(5)),
            urn.sample_batch(300, np.random.default_rng(5), method="loop"),
        )

    def test_batch_samples_are_valid_copies(self):
        graph = erdos_renyi(25, 60, rng=5)
        k = 4
        coloring = ColoringScheme.uniform(25, k, rng=6)
        urn = make_urn(graph, k, coloring=coloring)
        vertices, treelets, masks = urn.sample_batch(
            250, np.random.default_rng(1)
        )
        assert vertices.shape == (250, k)
        for row in vertices:
            assert len(set(row.tolist())) == k
            colors = {int(coloring.colors[v]) for v in row}
            assert len(colors) == k  # colorful
            assert graph.subgraph(row.tolist()).is_connected()
        assert np.all(masks == (1 << k) - 1)

    def test_transient_gathered_fallback_bit_identical(self):
        """With the gathered-row cache budget forced to its floor, most
        keys are served from transient per-call matrices — results must
        not change, and nothing beyond the budget may be retained."""
        urn = make_urn(erdos_renyi(60, 180, rng=3), 5, seed=11)
        reference = urn.sample_batch(300, np.random.default_rng(8))
        capped = make_urn(erdos_renyi(60, 180, rng=3), 5, seed=11)
        capped._gathered_row_budget = 4
        assert_batches_equal(
            capped.sample_batch(300, np.random.default_rng(8)), reference
        )
        assert_batches_equal(
            capped.sample_batch(300, np.random.default_rng(8), method="loop"),
            reference,
        )
        assert capped._gathered_cached_rows <= 4
        assert capped.instrumentation["gathered_transient_builds"] > 0

    def test_rejects_bad_arguments(self):
        urn = make_urn(erdos_renyi(30, 80, rng=5), 3, seed=2)
        with pytest.raises(SamplingError):
            urn.sample_batch(0)
        with pytest.raises(SamplingError):
            urn.sample_batch(10, method="telepathy")


class TestDescentPlans:
    def test_plan_shape_invariants(self):
        registry = TreeletRegistry(6)
        for treelet in registry.treelets_of_size(6):
            plan = compile_descent(registry, treelet)
            assert plan.num_leaves == 6
            assert plan.num_internal == 5
            assert len(plan) == 11
            leaves = [n for n in plan.nodes if n.is_leaf]
            assert sorted(n.leaf_column for n in leaves) == list(range(6))
            internals = [n for n in plan.nodes if not n.is_leaf]
            assert sorted(n.rank for n in internals) == list(range(5))

    def test_preorder_parents_first(self):
        registry = TreeletRegistry(5)
        for treelet in registry.treelets_of_size(5):
            plan = compile_descent(registry, treelet)
            for index, node in enumerate(plan.nodes):
                if not node.is_leaf:
                    assert node.left > index
                    assert node.right > node.left


class TestClassifyBatch:
    def test_matches_scalar_classify(self):
        graph = erdos_renyi(50, 160, rng=6)
        k = 5
        urn = make_urn(graph, k, seed=21)
        classifier = GraphletClassifier(graph, k)
        other = GraphletClassifier(graph, k)
        vertices, _, _ = urn.sample_batch(300, np.random.default_rng(3))
        batch_codes = classifier.classify_batch(vertices)
        scalar_codes = [other.classify(row) for row in vertices.tolist()]
        assert batch_codes.tolist() == scalar_codes

    def test_k2(self):
        graph = erdos_renyi(20, 50, rng=7)
        classifier = GraphletClassifier(graph, 2)
        pairs = graph.edge_array()[:10]
        codes = classifier.classify_batch(pairs)
        assert np.all(codes == 1)  # every edge induces the single-edge H

    def test_rejects_duplicates_and_bad_shape(self):
        graph = erdos_renyi(20, 50, rng=7)
        classifier = GraphletClassifier(graph, 3)
        with pytest.raises(SamplingError):
            classifier.classify_batch(np.array([[1, 1, 2]]))
        with pytest.raises(SamplingError):
            classifier.classify_batch(np.array([[1, 2]]))

    def test_empty_batch(self):
        graph = erdos_renyi(20, 50, rng=7)
        classifier = GraphletClassifier(graph, 3)
        out = classifier.classify_batch(np.empty((0, 3), dtype=np.int64))
        assert out.shape == (0,)


class TestRewiredEstimators:
    def test_naive_deterministic_per_seed_and_batch(self):
        urn = make_urn(erdos_renyi(40, 120, rng=9), 4, seed=31)
        classifier = GraphletClassifier(urn.graph, 4)
        a = naive_hit_counts(
            urn, classifier, 700, np.random.default_rng(5), batch_size=256
        )
        b = naive_hit_counts(
            urn, classifier, 700, np.random.default_rng(5), batch_size=256
        )
        assert a == b
        assert sum(a.values()) == 700

    def test_naive_batch_and_scalar_paths_agree_statistically(self):
        """Different streams, same estimator: totals must be close."""
        urn = make_urn(erdos_renyi(40, 120, rng=9), 3, seed=32)
        classifier = GraphletClassifier(urn.graph, 3)
        batched = naive_estimate(
            urn, classifier, 20_000, np.random.default_rng(1)
        )
        scalar = naive_estimate(
            urn, classifier, 20_000, np.random.default_rng(2), batch_size=1
        )
        for bits in set(batched.counts) | set(scalar.counts):
            big = max(batched.counts.get(bits, 0), scalar.counts.get(bits, 0))
            if big > 200:  # enough mass for a tight comparison
                assert batched.counts.get(bits, 0) == pytest.approx(
                    scalar.counts.get(bits, 0), rel=0.3
                )

    def test_ags_chunked_determinism(self):
        urn = make_urn(erdos_renyi(50, 160, rng=10), 4, seed=41)
        classifier = GraphletClassifier(urn.graph, 4)
        runs = [
            ags_estimate(
                urn,
                classifier,
                1500,
                cover_threshold=60,
                rng=np.random.default_rng(9),
                batch_size=128,
            )
            for _ in range(2)
        ]
        first, second = runs
        assert first.estimates.counts == second.estimates.counts
        assert first.shape_usage == second.shape_usage
        assert first.covered == second.covered
        assert first.switches == second.switches
        assert sum(first.shape_usage.values()) == 1500

    def test_ags_scalar_fallback_still_switches(self):
        urn = make_urn(erdos_renyi(50, 160, rng=10), 4, seed=41)
        classifier = GraphletClassifier(urn.graph, 4)
        result = ags_estimate(
            urn,
            classifier,
            800,
            cover_threshold=50,
            rng=np.random.default_rng(3),
            batch_size=1,
        )
        assert sum(result.shape_usage.values()) == 800
        assert result.covered  # small graph: something gets covered

    def test_facade_threads_batch_size(self):
        from repro.motivo import MotivoConfig, MotivoCounter

        graph = erdos_renyi(40, 120, rng=12)
        a = MotivoCounter(graph, MotivoConfig(k=4, seed=5, batch_size=128))
        b = MotivoCounter(graph, MotivoConfig(k=4, seed=5, batch_size=128))
        a.build()
        b.build()
        assert a.sample_naive(500).counts == b.sample_naive(500).counts
