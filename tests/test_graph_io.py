"""Tests for graph loading/saving (text and binary formats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import barabasi_albert, cycle_graph
from repro.graph.io import load_binary, load_edge_list, save_binary, save_edge_list


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = barabasi_albert(40, 3, rng=1)
        path = tmp_path / "graph.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded == g

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# header\n\n0 1\n1 2\n# trailing\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 weight=3\n")
        assert load_edge_list(path).num_edges == 1

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError, match="expected"):
            load_edge_list(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            load_edge_list(path)

    def test_duplicate_edges_merged(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        assert load_edge_list(path).num_edges == 1


class TestBinary:
    def test_round_trip(self, tmp_path):
        g = barabasi_albert(60, 4, rng=2)
        path = tmp_path / "graph.npz"
        save_binary(g, path)
        assert load_binary(path) == g

    def test_bad_payload(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(GraphFormatError, match="not a repro binary"):
            load_binary(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "magic.npz"
        g = cycle_graph(4)
        np.savez(
            path,
            magic=np.array("other-format"),
            indptr=g.indptr,
            indices=g.indices,
        )
        with pytest.raises(GraphFormatError, match="bad magic"):
            load_binary(path)

    def test_inconsistent_csr(self, tmp_path):
        path = tmp_path / "broken.npz"
        g = cycle_graph(4)
        np.savez(
            path,
            magic=np.array("repro-graph-v1"),
            indptr=g.indptr,
            indices=g.indices[:-1],
        )
        with pytest.raises(GraphFormatError, match="inconsistent"):
            load_binary(path)

    def test_empty_graph(self, tmp_path):
        from repro.graph.graph import Graph

        path = tmp_path / "empty.npz"
        save_binary(Graph.empty(7), path)
        loaded = load_binary(path)
        assert loaded.num_vertices == 7
        assert loaded.num_edges == 0
