"""Tests for graph loading/saving (text and binary formats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import barabasi_albert, cycle_graph, erdos_renyi
from repro.graph.graph import Graph
from repro.graph.io import (
    load_binary,
    load_edge_list,
    load_edge_list_mapped,
    save_binary,
    save_edge_list,
)


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = barabasi_albert(40, 3, rng=1)
        path = tmp_path / "graph.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded == g

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# header\n\n0 1\n1 2\n# trailing\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 weight=3\n")
        assert load_edge_list(path).num_edges == 1

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError, match="expected"):
            load_edge_list(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            load_edge_list(path)

    def test_duplicate_edges_merged(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        assert load_edge_list(path).num_edges == 1

    def test_round_trip_preserves_isolated_vertices(self, tmp_path):
        # The header bug: a 6-vertex graph with trailing isolated
        # vertices used to come back with 2 vertices.
        g = Graph.from_edges([(0, 1), (1, 2)], n=6)
        path = tmp_path / "isolated.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == 6
        assert loaded == g

    def test_explicit_n_overrides_header(self, tmp_path):
        g = Graph.from_edges([(0, 1)], n=3)
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        assert load_edge_list(path, n=9).num_vertices == 9

    def test_declared_n_must_cover_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# repro graph n=2 m=1\n0 5\n")
        with pytest.raises(GraphFormatError, match="mentions vertex"):
            load_edge_list(path)

    def test_self_loops_in_input_dropped(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("# repro graph n=3 m=2\n0 0\n0 1\n1 2\n2 2\n")
        g = load_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_negative_ids_rejected(self, tmp_path):
        path = tmp_path / "neg.txt"
        path.write_text("-1 2\n")
        with pytest.raises(GraphFormatError, match="non-negative"):
            load_edge_list(path)


class TestSparseIdCompaction:
    def test_snap_style_ids_compacted(self, tmp_path):
        # The allocation bug: ids like 10**6 used to allocate a
        # million-vertex CSR for a 3-vertex graph.
        path = tmp_path / "snap.txt"
        path.write_text("1000000 5\n5 42\n")
        g, original = load_edge_list_mapped(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert original.tolist() == [5, 42, 1000000]
        # Remap is rank-order: edge (5, 42) became (0, 1), etc.
        assert sorted(g.neighbors(0).tolist()) == [1, 2]

    def test_compact_false_keeps_raw_ids(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("1000000 5\n")
        g, original = load_edge_list_mapped(path, compact=False)
        assert g.num_vertices == 1000001
        assert original is None

    def test_contiguous_ids_left_alone_by_auto(self, tmp_path):
        path = tmp_path / "dense.txt"
        path.write_text("0 1\n1 2\n")
        g, original = load_edge_list_mapped(path)
        assert g.num_vertices == 3
        assert original is None

    def test_one_indexed_files_left_alone_by_auto(self, tmp_path):
        # Mildly gappy headerless inputs (the common 1-indexed list)
        # keep their ids — auto-compaction needs substantial sparsity.
        path = tmp_path / "oneidx.txt"
        path.write_text("1 2\n2 3\n")
        g, original = load_edge_list_mapped(path)
        assert g.num_vertices == 4
        assert original is None

    def test_header_disables_auto_compaction(self, tmp_path):
        # A declared n fixes the id space: gaps are isolated vertices.
        g = Graph.from_edges([(0, 3)], n=5)
        path = tmp_path / "gap.txt"
        save_edge_list(g, path)
        loaded, original = load_edge_list_mapped(path)
        assert original is None
        assert loaded == g

    def test_forced_compact_conflicts_with_declared_n(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# repro graph n=4 m=1\n0 3\n")
        with pytest.raises(GraphFormatError, match="compact"):
            load_edge_list(path, compact=True)

    def test_forced_compact_on_headerless_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("7 9\n")
        g, original = load_edge_list_mapped(path, compact=True)
        assert g.num_vertices == 2
        assert original.tolist() == [7, 9]


class TestRoundTripProperties:
    """load ∘ save = id over randomized graphs, both formats."""

    @pytest.mark.parametrize("seed", range(6))
    def test_text_round_trip_random_graphs(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        m = int(rng.integers(0, 3 * n))
        edges = [
            (int(rng.integers(n)), int(rng.integers(n))) for _ in range(m)
        ]
        # Random extra head-room: trailing isolated vertices must survive.
        g = Graph.from_edges(edges, n=n + int(rng.integers(0, 5)))
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        assert load_edge_list(path) == g

    @pytest.mark.parametrize("seed", range(6))
    def test_text_binary_parity(self, tmp_path, seed):
        g = erdos_renyi(30, 45, rng=seed)
        text, binary = tmp_path / "g.txt", tmp_path / "g.npz"
        save_edge_list(g, text)
        save_binary(g, binary)
        from_text = load_edge_list(text)
        from_binary = load_binary(binary)
        assert from_text == from_binary == g
        assert np.array_equal(from_text.indptr, from_binary.indptr)
        assert np.array_equal(from_text.indices, from_binary.indices)

    def test_empty_graph_round_trips_in_text(self, tmp_path):
        g = Graph.empty(4)
        path = tmp_path / "empty.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 0


class TestBinary:
    def test_round_trip(self, tmp_path):
        g = barabasi_albert(60, 4, rng=2)
        path = tmp_path / "graph.npz"
        save_binary(g, path)
        assert load_binary(path) == g

    def test_bad_payload(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(GraphFormatError, match="not a repro binary"):
            load_binary(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "magic.npz"
        g = cycle_graph(4)
        np.savez(
            path,
            magic=np.array("other-format"),
            indptr=g.indptr,
            indices=g.indices,
        )
        with pytest.raises(GraphFormatError, match="bad magic"):
            load_binary(path)

    def test_inconsistent_csr(self, tmp_path):
        path = tmp_path / "broken.npz"
        g = cycle_graph(4)
        np.savez(
            path,
            magic=np.array("repro-graph-v1"),
            indptr=g.indptr,
            indices=g.indices[:-1],
        )
        with pytest.raises(GraphFormatError, match="inconsistent"):
            load_binary(path)

    def test_empty_graph(self, tmp_path):
        from repro.graph.graph import Graph

        path = tmp_path / "empty.npz"
        save_binary(Graph.empty(7), path)
        loaded = load_binary(path)
        assert loaded.num_vertices == 7
        assert loaded.num_edges == 0
