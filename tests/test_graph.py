"""Tests for the CSR graph substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.generators import complete_graph, cycle_graph, path_graph


@st.composite
def edge_lists(draw, max_n=12, max_m=40):
    n = draw(st.integers(min_value=1, max_value=max_n))
    count = draw(st.integers(min_value=0, max_value=max_m))
    edges = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(count)
    ]
    return n, edges


class TestConstruction:
    def test_empty(self):
        g = Graph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.degrees().tolist() == [0] * 5

    def test_negative_n(self):
        with pytest.raises(GraphError):
            Graph.empty(-1)

    def test_dedupe_and_self_loops(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1), (2, 2)], n=3)
        assert g.num_edges == 1
        assert g.degree(2) == 0

    def test_bad_edge_shapes(self):
        with pytest.raises(GraphError):
            Graph.from_edges([(0, 1, 2)])  # type: ignore[list-item]

    def test_negative_vertex(self):
        with pytest.raises(GraphError):
            Graph.from_edges([(-1, 0)])

    def test_n_too_small(self):
        with pytest.raises(GraphError):
            Graph.from_edges([(0, 5)], n=3)

    @given(edge_lists())
    @settings(max_examples=100)
    def test_from_edges_invariants(self, data):
        n, edges = data
        g = Graph.from_edges(edges, n=n)
        # Symmetric, sorted adjacency, no self-loops, degrees consistent.
        assert g.indices.shape[0] == 2 * g.num_edges
        for v in range(n):
            row = g.neighbors(v)
            assert np.all(np.diff(row) > 0)  # strictly sorted, no dupes
            assert v not in row
            for u in row:
                assert v in g.neighbors(int(u))


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph.from_edges([(3, 1), (3, 0), (3, 2)])
        assert g.neighbors(3).tolist() == [0, 1, 2]

    def test_has_edge(self):
        g = cycle_graph(5)
        assert g.has_edge(0, 1)
        assert g.has_edge(4, 0)
        assert not g.has_edge(0, 2)

    def test_vertex_bounds(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            g.degree(3)
        with pytest.raises(GraphError):
            g.neighbors(-1)
        with pytest.raises(GraphError):
            g.has_edge(0, 7)

    def test_max_degree(self):
        from repro.graph.generators import star_graph

        assert star_graph(6).max_degree == 6
        assert Graph.empty(0).max_degree == 0

    def test_edges_iterator(self):
        g = complete_graph(4)
        edges = list(g.edges())
        assert len(edges) == 6
        assert all(u < v for u, v in edges)

    def test_repr(self):
        assert repr(path_graph(3)) == "Graph(n=3, m=2)"

    def test_equality_and_hash(self):
        a = cycle_graph(4)
        b = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != path_graph(4)
        assert a.__eq__(42) is NotImplemented


class TestDerived:
    def test_adjacency_csr_matches(self):
        g = cycle_graph(6)
        a = g.adjacency_csr()
        dense = a.toarray()
        assert dense.sum() == 2 * g.num_edges
        assert (dense == dense.T).all()
        # Cached object is reused.
        assert g.adjacency_csr() is a

    def test_induced_adjacency(self):
        g = complete_graph(5)
        block = g.induced_adjacency([0, 2, 4])
        assert block.sum() == 6  # K3, symmetric

    def test_subgraph_relabels(self):
        g = cycle_graph(6)
        sub = g.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # path 0-1-2

    def test_subgraph_duplicate_vertices(self):
        with pytest.raises(GraphError):
            cycle_graph(4).subgraph([0, 0, 1])

    def test_connected_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)], n=5)
        components = g.connected_components()
        assert sorted(map(tuple, components)) == [(0, 1), (2, 3), (4,)]
        assert not g.is_connected()
        assert cycle_graph(5).is_connected()
        assert Graph.empty(1).is_connected()
        assert Graph.empty(0).is_connected()

    def test_spmv_neighbor_sum(self):
        """A @ x computes per-vertex neighbor sums — the DP kernel."""
        g = path_graph(4)
        x = np.array([1.0, 2.0, 3.0, 4.0])
        sums = g.adjacency_csr().dot(x)
        assert sums.tolist() == [2.0, 4.0, 6.0, 3.0]
