"""Tests for the CC-style pointer treelets, cross-checked vs succinct ops."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MergeError
from repro.treelets.encoding import (
    SINGLETON,
    beta,
    can_merge,
    decomp,
    getsize,
    merge,
    treelet_key,
)
from repro.treelets.pointer_tree import PointerTreeFactory
from repro.treelets.registry import enumerate_rooted_treelets
from repro.util.instrument import Instrumentation


@st.composite
def random_encoding(draw, max_nodes=8):
    from repro.treelets.encoding import encode_parent_vector

    n = draw(st.integers(min_value=1, max_value=max_nodes))
    parents = [-1]
    for node in range(1, n):
        parents.append(draw(st.integers(min_value=0, max_value=node - 1)))
    return encode_parent_vector(parents)


class TestInterning:
    def test_singleton_identity(self):
        factory = PointerTreeFactory()
        assert factory.from_children([]) is factory.singleton

    def test_structural_interning(self):
        factory = PointerTreeFactory()
        s = factory.singleton
        a = factory.from_children([s, s])
        b = factory.from_children([s, s])
        assert a is b
        assert factory.interned_count >= 2

    @given(random_encoding())
    def test_round_trip(self, encoding):
        factory = PointerTreeFactory()
        tree = factory.from_encoding(encoding)
        assert factory.to_encoding(tree) == encoding
        assert tree.size == getsize(encoding)


class TestOrderAgreement:
    @given(random_encoding(), random_encoding())
    def test_compare_matches_succinct_order(self, enc_a, enc_b):
        factory = PointerTreeFactory()
        a = factory.from_encoding(enc_a)
        b = factory.from_encoding(enc_b)
        result = factory.compare(a, b)
        ka, kb = treelet_key(enc_a), treelet_key(enc_b)
        if enc_a == enc_b:
            assert result == 0
        else:
            # The pointer order and the succinct order must agree on which
            # operand comes first (they define the same canonical forms).
            assert (result < 0) == (ka < kb)

    def test_comparisons_counted(self):
        inst = Instrumentation()
        factory = PointerTreeFactory(inst)
        a = factory.from_encoding(merge(SINGLETON, SINGLETON))
        b = factory.from_encoding(SINGLETON)
        factory.compare(a, b)
        assert inst["pointer_comparisons"] >= 1


class TestCheckAndMerge:
    @given(random_encoding(max_nodes=6), random_encoding(max_nodes=6))
    def test_merge_agrees_with_succinct(self, enc_a, enc_b):
        factory = PointerTreeFactory()
        a = factory.from_encoding(enc_a)
        b = factory.from_encoding(enc_b)
        merged = factory.check_and_merge(a, b)
        if can_merge(enc_a, enc_b):
            assert merged is not None
            assert factory.to_encoding(merged) == merge(enc_a, enc_b)
        else:
            assert merged is None

    def test_merge_counted(self):
        inst = Instrumentation()
        factory = PointerTreeFactory(inst)
        factory.check_and_merge(factory.singleton, factory.singleton)
        assert inst["check_and_merge"] == 1
        assert inst["merge_success"] == 1

    def test_strict_merge_raises(self):
        factory = PointerTreeFactory()
        s = factory.singleton
        edge = factory.from_children([s])
        path3 = factory.from_children([edge])
        with pytest.raises(MergeError):
            factory.merge(path3, path3)


class TestDecompBeta:
    @given(random_encoding())
    def test_decomp_matches(self, encoding):
        if encoding == SINGLETON:
            return
        factory = PointerTreeFactory()
        tree = factory.from_encoding(encoding)
        rest, first = factory.decomp(tree)
        enc_rest, enc_first = decomp(encoding)
        assert factory.to_encoding(rest) == enc_rest
        assert factory.to_encoding(first) == enc_first

    @given(random_encoding())
    def test_beta_matches(self, encoding):
        if encoding == SINGLETON:
            return
        factory = PointerTreeFactory()
        assert factory.beta(factory.from_encoding(encoding)) == beta(encoding)

    def test_decomp_singleton_raises(self):
        factory = PointerTreeFactory()
        with pytest.raises(MergeError):
            factory.decomp(factory.singleton)

    def test_beta_singleton_raises(self):
        factory = PointerTreeFactory()
        with pytest.raises(MergeError):
            factory.beta(factory.singleton)


class TestExhaustiveAgreement:
    def test_all_treelets_round_trip_through_factory(self):
        factory = PointerTreeFactory()
        for level in enumerate_rooted_treelets(6):
            for encoding in level:
                tree = factory.from_encoding(encoding)
                assert factory.to_encoding(tree) == encoding
