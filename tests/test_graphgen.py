"""The deterministic power-law synthesizer behind the scale tests."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.graph import load_edge_list, load_edge_list_external

from support.graphgen import (
    powerlaw_edges,
    powerlaw_weights,
    synthesize_snap_file,
    write_snap_edge_list,
)


class TestPowerlawWeights:
    def test_monotone_decreasing_hub_first(self):
        weights = powerlaw_weights(100, exponent=2.2)
        assert weights.shape == (100,)
        assert np.all(np.diff(weights) < 0)
        assert weights[0] == 1.0

    def test_heavier_tail_for_lower_exponent(self):
        flat = powerlaw_weights(1000, exponent=3.0)
        skewed = powerlaw_weights(1000, exponent=1.8)
        # The skewed sequence concentrates more mass on the hub.
        assert skewed[0] / skewed.sum() > flat[0] / flat.sum()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            powerlaw_weights(0)
        with pytest.raises(ValueError):
            powerlaw_weights(10, exponent=1.0)


class TestPowerlawEdges:
    def test_exact_edge_count_simple_canonical(self):
        edges = powerlaw_edges(200, 900, seed=4)
        assert edges.shape == (900, 2)
        assert np.all(edges[:, 0] < edges[:, 1])
        packed = edges[:, 0] * 200 + edges[:, 1]
        assert np.unique(packed).size == 900
        assert np.all(np.diff(packed) > 0)

    def test_deterministic_in_seed(self):
        a = powerlaw_edges(300, 1500, seed=9)
        b = powerlaw_edges(300, 1500, seed=9)
        c = powerlaw_edges(300, 1500, seed=10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_degree_sequence_is_skewed(self):
        edges = powerlaw_edges(2000, 10_000, exponent=2.0, seed=1)
        degrees = np.bincount(edges.ravel(), minlength=2000)
        # The hub (vertex 0) dwarfs the median vertex.
        assert degrees[0] > 20 * max(1, int(np.median(degrees)))

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            powerlaw_edges(4, 7)


class TestSnapFiles:
    def test_round_trip_both_loaders_agree(self, tmp_path):
        target = tmp_path / "g.txt"
        synthesize_snap_file(target, n=400, m=1800, seed=3)
        in_memory = load_edge_list(target)
        external = load_edge_list_external(
            target, tmp_path / "csr", chunk_edges=257
        )
        assert in_memory.num_vertices == 400
        assert in_memory.num_edges == 1800
        assert external.fingerprint() == in_memory.fingerprint()

    def test_byte_identical_across_runs(self, tmp_path):
        digests = []
        for run in ("a", "b"):
            target = tmp_path / f"{run}.txt"
            synthesize_snap_file(target, n=150, m=600, seed=21)
            digests.append(hashlib.sha256(target.read_bytes()).hexdigest())
        assert digests[0] == digests[1]

    def test_header_preserves_isolated_vertices(self, tmp_path):
        target = tmp_path / "iso.txt"
        edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        write_snap_edge_list(target, edges, n=10)
        graph = load_edge_list(target)
        assert graph.num_vertices == 10
        assert graph.degree(9) == 0
