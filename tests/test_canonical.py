"""Tests for canonical graphlet forms (the Nauty replacement)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphletError
from repro.graphlets.canonical import are_isomorphic, canonical_form
from repro.graphlets.encoding import (
    encode_edges,
    graphlet_edge_count,
    relabel,
)


@st.composite
def bits_and_permutation(draw, k=6):
    bits = draw(
        st.integers(min_value=0, max_value=(1 << (k * (k - 1) // 2)) - 1)
    )
    permutation = draw(st.permutations(list(range(k))))
    return bits, permutation


class TestInvariance:
    @given(bits_and_permutation())
    @settings(max_examples=150, deadline=None)
    def test_permutation_invariant(self, data):
        """The defining property: canon(g) == canon(π(g)) for any π."""
        bits, permutation = data
        k = 6
        assert canonical_form(bits, k) == canonical_form(
            relabel(bits, k, permutation), k
        )

    @given(bits_and_permutation())
    @settings(max_examples=100, deadline=None)
    def test_canonical_is_in_orbit(self, data):
        bits, _ = data
        k = 6
        canon = canonical_form(bits, k)
        assert graphlet_edge_count(canon) == graphlet_edge_count(bits)
        assert are_isomorphic(canon, bits, k)

    @given(bits_and_permutation())
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, data):
        bits, _ = data
        assert canonical_form(canonical_form(bits, 6), 6) == canonical_form(
            bits, 6
        )


class TestDistinguishes:
    def test_path_vs_star(self):
        path = encode_edges([(0, 1), (1, 2), (2, 3)], 4)
        star = encode_edges([(0, 1), (0, 2), (0, 3)], 4)
        assert not are_isomorphic(path, star, 4)

    def test_triangle_plus_edge_vs_path(self):
        paw = encode_edges([(0, 1), (1, 2), (2, 0), (2, 3)], 4)
        path = encode_edges([(0, 1), (1, 2), (2, 3)], 4)
        assert not are_isomorphic(paw, path, 4)

    def test_cospectral_like_regular_graphs(self):
        """C6 vs two triangles: both 2-regular, not isomorphic."""
        c6 = encode_edges(
            [(i, (i + 1) % 6) for i in range(6)], 6
        )
        two_triangles = encode_edges(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], 6
        )
        assert not are_isomorphic(c6, two_triangles, 6)

    def test_isomorphic_cycles(self):
        c5a = encode_edges([(i, (i + 1) % 5) for i in range(5)], 5)
        c5b = relabel(c5a, 5, [3, 0, 4, 1, 2])
        assert are_isomorphic(c5a, c5b, 5)


class TestEdgeCases:
    def test_tiny_sizes(self):
        assert canonical_form(0, 1) == 0
        assert canonical_form(0, 2) == 0
        assert canonical_form(1, 2) == 1

    def test_complete_and_empty_shortcut(self):
        k = 7
        full = (1 << (k * (k - 1) // 2)) - 1
        assert canonical_form(full, k) == full
        assert canonical_form(0, k) == 0

    def test_bad_size(self):
        with pytest.raises(GraphletError):
            canonical_form(0, 0)

    def test_highly_symmetric_k44(self):
        """Complete bipartite K4,4 — WL cannot split it; search must."""
        k44 = encode_edges(
            [(i, j) for i in range(4) for j in range(4, 8)], 8
        )
        shuffled = relabel(k44, 8, [7, 2, 5, 0, 3, 6, 1, 4])
        assert canonical_form(k44, 8) == canonical_form(shuffled, 8)
