"""Tests for RNG plumbing and instrumentation counters."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.util.instrument import Instrumentation
from repro.util.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_from_seed_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(9)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRng:
    def test_count(self):
        streams = spawn_rng(1, 5)
        assert len(streams) == 5

    def test_independent_but_deterministic(self):
        first = [g.integers(0, 10**9) for g in spawn_rng(7, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rng(7, 3)]
        assert first == second
        assert len(set(first)) == 3  # streams differ from each other

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(1, -1)

    def test_zero_streams(self):
        assert spawn_rng(1, 0) == []


class TestInstrumentation:
    def test_count_accumulates(self):
        inst = Instrumentation()
        inst.count("merges")
        inst.count("merges", 4)
        assert inst["merges"] == 5
        assert inst["missing"] == 0

    def test_timer_accumulates(self):
        inst = Instrumentation()
        with inst.timer("work"):
            time.sleep(0.01)
        with inst.timer("work"):
            time.sleep(0.01)
        assert inst.timings["work"] >= 0.02

    def test_timer_survives_exception(self):
        inst = Instrumentation()
        with pytest.raises(RuntimeError):
            with inst.timer("broken"):
                raise RuntimeError("boom")
        assert inst.timings["broken"] >= 0.0

    def test_merge(self):
        a = Instrumentation()
        b = Instrumentation()
        a.count("x", 2)
        b.count("x", 3)
        b.count("y")
        b.timings["t"] = 1.5
        a.merge(b)
        assert a["x"] == 5
        assert a["y"] == 1
        assert a.timings["t"] == pytest.approx(1.5)

    def test_reset_and_snapshot(self):
        inst = Instrumentation()
        inst.count("x", 2)
        with inst.timer("t"):
            pass
        snap = inst.snapshot()
        assert snap["count.x"] == 2.0
        assert "time.t" in snap
        inst.reset()
        assert inst.snapshot() == {}
