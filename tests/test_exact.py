"""Tests for the exact counters (ESU vs brute force vs closed forms)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.colorcoding.coloring import ColoringScheme
from repro.errors import SamplingError
from repro.exact.brute import brute_force_counts
from repro.exact.esu import enumerate_occurrences, exact_colorful_counts, exact_counts
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graphlets.enumerate import (
    clique_graphlet,
    cycle_graphlet,
    path_graphlet,
    star_graphlet,
)


class TestEnumeration:
    def test_counts_connected_subsets_once(self):
        g = cycle_graph(6)
        occurrences = list(enumerate_occurrences(g, 3))
        # C6 has exactly 6 induced P3's (each window of 3 vertices).
        assert len(occurrences) == 6
        assert len(set(occurrences)) == 6

    def test_k1(self):
        g = path_graph(4)
        assert len(list(enumerate_occurrences(g, 1))) == 4

    def test_k2_is_edges(self):
        g = erdos_renyi(15, 40, rng=1)
        assert len(list(enumerate_occurrences(g, 2))) == g.num_edges

    def test_complete_graph_all_subsets(self):
        from math import comb

        g = complete_graph(7)
        assert len(list(enumerate_occurrences(g, 4))) == comb(7, 4)


class TestClosedForms:
    def test_path_graph(self):
        # P_n contains exactly n-k+1 induced k-paths and nothing else.
        g = path_graph(10)
        counts = exact_counts(g, 4)
        assert counts == {path_graphlet(4): 7}

    def test_cycle_graph(self):
        g = cycle_graph(9)
        counts = exact_counts(g, 4)
        assert counts == {path_graphlet(4): 9}

    def test_cycle_graph_own_size(self):
        g = cycle_graph(5)
        counts = exact_counts(g, 5)
        assert counts == {cycle_graphlet(5): 1}

    def test_star_graph(self):
        from math import comb

        g = star_graph(8)
        counts = exact_counts(g, 4)
        assert counts == {star_graphlet(4): comb(8, 3)}

    def test_complete_graph(self):
        from math import comb

        g = complete_graph(8)
        counts = exact_counts(g, 5)
        assert counts == {clique_graphlet(5): comb(8, 5)}


class TestEsuVsBrute:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_random_graphs_agree(self, seed, k):
        g = erdos_renyi(13, 28, rng=seed)
        assert exact_counts(g, k) == brute_force_counts(g, k)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_colorful_counts_agree(self, seed):
        g = erdos_renyi(13, 28, rng=seed + 10)
        k = 4
        coloring = ColoringScheme.uniform(13, k, rng=seed + 20)
        assert exact_colorful_counts(g, k, coloring) == brute_force_counts(
            g, k, coloring=coloring
        )

    def test_colorful_subset_of_total(self):
        g = erdos_renyi(14, 30, rng=30)
        k = 4
        coloring = ColoringScheme.uniform(14, k, rng=31)
        colorful = exact_colorful_counts(g, k, coloring)
        total = exact_counts(g, k)
        for bits, count in colorful.items():
            assert count <= total[bits]


class TestValidation:
    def test_brute_force_budget(self):
        g = erdos_renyi(100, 300, rng=2)
        with pytest.raises(SamplingError, match="budget"):
            brute_force_counts(g, 5, max_subsets=1000)

    def test_coloring_k_mismatch(self):
        g = path_graph(5)
        coloring = ColoringScheme.uniform(5, 3, rng=0)
        with pytest.raises(SamplingError):
            exact_colorful_counts(g, 4, coloring)

    def test_k_positive(self):
        with pytest.raises(SamplingError):
            list(enumerate_occurrences(path_graph(3), 0))
