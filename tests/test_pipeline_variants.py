"""Cross-cutting tests of pipeline option combinations.

The option matrix (biased coloring × zero-rooting × spilling × buffering)
must compose: every combination should yield a working urn whose samples
are valid colorful treelet copies, and statistically equivalent estimates
where the options are estimator-neutral.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.colorcoding.buildup import build_table
from repro.colorcoding.coloring import ColoringScheme
from repro.colorcoding.urn import TreeletUrn
from repro.graph.generators import erdos_renyi
from repro.motivo import MotivoConfig, MotivoCounter
from repro.sampling.naive import naive_estimate
from repro.sampling.occurrences import GraphletClassifier
from repro.table.flush import SpillStore


@pytest.fixture(scope="module")
def host():
    return erdos_renyi(300, 1100, rng=100)


class TestOptionMatrix:
    @pytest.mark.parametrize("zero_rooting", [True, False])
    @pytest.mark.parametrize("lam", [None, 0.15])
    def test_combinations_build_and_sample(self, host, zero_rooting, lam):
        config = MotivoConfig(
            k=4, seed=101, zero_rooting=zero_rooting, biased_lambda=lam
        )
        counter = MotivoCounter(host, config)
        counter.build()
        estimates = counter.sample_naive(400)
        assert estimates.total > 0
        assert sum(estimates.frequencies().values()) == pytest.approx(1.0)

    def test_spilled_urn_samples_from_memmap(self, host, tmp_path):
        """Sampling must work end to end over memory-mapped layers."""
        config = MotivoConfig(k=4, seed=102, spill_dir=str(tmp_path / "s"))
        counter = MotivoCounter(host, config)
        counter.build()
        assert isinstance(
            counter.urn.table.layer(4).counts, np.memmap
        )
        estimates = counter.sample_naive(300)
        assert estimates.total > 0

    def test_zero_rooting_estimator_neutral(self, host):
        """0-rooting changes storage, not the sampling distribution."""
        coloring = ColoringScheme.uniform(host.num_vertices, 4, rng=103)
        rooted = TreeletUrn(
            host, build_table(host, coloring, zero_rooting=True), coloring
        )
        unrooted = TreeletUrn(
            host, build_table(host, coloring, zero_rooting=False), coloring
        )
        classifier = GraphletClassifier(host, 4)
        a = naive_estimate(
            rooted, classifier, 6000, np.random.default_rng(1)
        )
        b = naive_estimate(
            unrooted, classifier, 6000, np.random.default_rng(2)
        )
        # The urns hold the same copies (each counted once vs k times,
        # which total_treelets normalizes away) and estimates agree.
        assert unrooted.total_treelets == pytest.approx(
            rooted.total_treelets
        )
        for bits, value in a.top(3):
            assert b.counts.get(bits, 0.0) == pytest.approx(value, rel=0.2)

    def test_biased_estimates_agree_with_uniform_in_expectation(self, host):
        """Biased coloring changes p_k but not the estimator target."""
        k = 4
        uniform_runs = []
        biased_runs = []
        for seed in range(6):
            uniform = MotivoCounter(
                host, MotivoConfig(k=k, seed=200 + seed)
            )
            uniform.build()
            uniform_runs.append(uniform.sample_naive(4000))
            biased = MotivoCounter(
                host,
                MotivoConfig(k=k, seed=300 + seed, biased_lambda=0.2),
            )
            biased.build()
            biased_runs.append(biased.sample_naive(4000))
        top_bits = max(
            uniform_runs[0].counts, key=uniform_runs[0].counts.get
        )
        uniform_mean = np.mean(
            [run.counts.get(top_bits, 0.0) for run in uniform_runs]
        )
        biased_mean = np.mean(
            [run.counts.get(top_bits, 0.0) for run in biased_runs]
        )
        assert biased_mean == pytest.approx(uniform_mean, rel=0.25)


class TestUrnValidityUnderBias:
    def test_biased_samples_are_colorful(self, host):
        coloring = ColoringScheme.biased(host.num_vertices, 4, 0.1, rng=104)
        table = build_table(host, coloring)
        urn = TreeletUrn(host, table, coloring)
        rng = np.random.default_rng(3)
        for _ in range(200):
            vertices, _t, _m = urn.sample(rng)
            colors = {int(coloring.colors[v]) for v in vertices}
            assert len(colors) == 4

    def test_biased_shape_sampling(self, host):
        from repro.treelets.encoding import canonical_free

        coloring = ColoringScheme.biased(host.num_vertices, 4, 0.15, rng=105)
        table = build_table(host, coloring)
        urn = TreeletUrn(host, table, coloring)
        rng = np.random.default_rng(4)
        for shape in urn.registry.free_shapes:
            if urn.shape_total(shape) <= 0:
                continue
            vertices, treelet, _ = urn.sample_shape(shape, rng)
            assert canonical_free(treelet) == shape
