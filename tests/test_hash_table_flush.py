"""Tests for the CC hash table baseline and the greedy-flush spill store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TableError
from repro.table.count_table import Layer
from repro.table.flush import SpillStore
from repro.table.hash_table import HashCountTable
from repro.treelets.pointer_tree import PointerTreeFactory


class TestHashCountTable:
    @pytest.fixture
    def table(self):
        factory = PointerTreeFactory()
        return HashCountTable(k=3, num_vertices=3, factory=factory), factory

    def test_k_validation(self):
        with pytest.raises(TableError):
            HashCountTable(k=1, num_vertices=2, factory=PointerTreeFactory())

    def test_add_get(self, table):
        t, factory = table
        s = factory.singleton
        t.add(0, s, 0b001, 5)
        t.add(0, s, 0b001, 2)
        assert t.get(0, s, 0b001) == 7
        assert t.get(1, s, 0b001) == 0

    def test_add_zero_is_noop(self, table):
        t, factory = table
        t.add(0, factory.singleton, 0b1, 0)
        assert t.total_pairs() == 0

    def test_add_to_zero_removes(self, table):
        t, factory = table
        s = factory.singleton
        t.add(0, s, 0b1, 5)
        t.add(0, s, 0b1, -5)
        assert t.total_pairs() == 0

    def test_set(self, table):
        t, factory = table
        s = factory.singleton
        t.set(0, s, 0b1, 9)
        assert t.get(0, s, 0b1) == 9
        t.set(0, s, 0b1, 0)
        assert t.total_pairs() == 0

    def test_items_at_by_size(self, table):
        t, factory = table
        s = factory.singleton
        edge = factory.from_children([s])
        t.add(0, s, 0b001, 1)
        t.add(0, edge, 0b011, 4)
        assert len(list(t.items_at(0))) == 2
        assert list(t.items_at(0, size=2)) == [(edge, 0b011, 4)]
        assert t.total_at(0, 2) == 4

    def test_accounting(self, table):
        t, factory = table
        t.add(0, factory.singleton, 0b1, 1)
        t.add(1, factory.singleton, 0b10, 1)
        assert t.total_pairs() == 2
        assert t.paper_equivalent_bytes() == 2 * 128 // 8

    def test_to_encoding_dict(self, table):
        t, factory = table
        edge = factory.from_children([factory.singleton])
        t.add(2, edge, 0b011, 6)
        from repro.treelets.encoding import SINGLETON, merge

        converted = t.to_encoding_dict()
        assert converted == {(merge(SINGLETON, SINGLETON), 0b011): {2: 6}}


class TestSpillStore:
    def make_layer_data(self):
        keys = [(0, 0b100), (0, 0b001), (0, 0b010)]  # deliberately unsorted
        counts = np.array(
            [[1.0, 0.0], [0.0, 2.0], [3.0, 4.0]], dtype=np.float64
        )
        return keys, counts

    def test_spill_and_load(self, tmp_path):
        store = SpillStore(str(tmp_path / "spill"))
        keys, counts = self.make_layer_data()
        store.spill_layer(1, keys, counts)
        layer = store.load_layer(1, mmap=False)
        assert isinstance(layer, Layer)
        # Layer sorts on construction; data follows its key.
        assert layer.keys == sorted(keys)
        assert layer.counts_for(0, 0b001).tolist() == [0.0, 2.0]
        assert layer.counts_for(0, 0b100).tolist() == [1.0, 0.0]

    def test_sort_pass_rewrites_sorted(self, tmp_path):
        store = SpillStore(str(tmp_path))
        keys, counts = self.make_layer_data()
        store.spill_layer(1, keys, counts)
        raw_before = np.load(store._key_path(1))
        assert raw_before[:, 1].tolist() == [0b100, 0b001, 0b010]
        assert store.sort_pass() == 1
        raw_after = np.load(store._key_path(1))
        assert raw_after[:, 1].tolist() == [0b001, 0b010, 0b100]
        # Second pass is a no-op.
        assert store.sort_pass() == 0

    def test_mmap_load(self, tmp_path):
        store = SpillStore(str(tmp_path))
        keys, counts = self.make_layer_data()
        store.spill_layer(2, keys, counts)
        store.sort_pass()
        layer = store.load_layer(2, mmap=True)
        # After the sort pass the on-disk order is the key order, so the
        # reopened Layer keeps the memory-mapped array (§3.3 mmap reads).
        assert isinstance(layer.counts, np.memmap)
        assert float(layer.totals().sum()) == counts.sum()

    def test_unsorted_mmap_load_copies(self, tmp_path):
        store = SpillStore(str(tmp_path))
        keys, counts = self.make_layer_data()
        store.spill_layer(2, keys, counts)
        layer = store.load_layer(2, mmap=True)
        # Unsorted on disk: the Layer must reorder (and therefore copy).
        assert layer.keys == sorted(keys)

    def test_missing_layer(self, tmp_path):
        store = SpillStore(str(tmp_path))
        with pytest.raises(TableError):
            store.load_layer(3)

    def test_mismatched_shapes(self, tmp_path):
        store = SpillStore(str(tmp_path))
        with pytest.raises(TableError):
            store.spill_layer(1, [(0, 1)], np.zeros((2, 2)))

    def test_spilled_sizes_and_bytes(self, tmp_path):
        store = SpillStore(str(tmp_path))
        keys, counts = self.make_layer_data()
        store.spill_layer(1, keys, counts)
        store.spill_layer(3, keys, counts)
        assert store.spilled_sizes() == [1, 3]
        assert store.bytes_on_disk() > 0

    def test_empty_layer(self, tmp_path):
        store = SpillStore(str(tmp_path))
        store.spill_layer(1, [], np.zeros((0, 4)))
        layer = store.load_layer(1, mmap=False)
        assert layer.num_keys == 0
        assert layer.num_vertices == 4
