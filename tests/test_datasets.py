"""Tests for the named surrogate datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.datasets import dataset_info, dataset_names, load_dataset


class TestRegistry:
    def test_paper_table1_names_present(self):
        names = set(dataset_names())
        expected = {
            "facebook", "berkstan", "amazon", "dblp", "orkut",
            "livejournal", "yelp", "twitter", "friendster", "lollipop",
        }
        assert expected <= names

    def test_unknown_dataset(self):
        with pytest.raises(GraphError, match="unknown dataset"):
            load_dataset("nope")

    def test_info_metadata(self):
        info = dataset_info("yelp")
        assert info.paper_nodes_m == pytest.approx(7.2)
        assert info.paper_edges_m == pytest.approx(26.1)
        assert info.paper_max_k == 8


class TestSurrogates:
    @pytest.mark.parametrize("name", dataset_names())
    def test_loadable_and_nonempty(self, name):
        g = load_dataset(name)
        assert g.num_vertices > 0
        assert g.num_edges > 0

    def test_deterministic_and_cached(self):
        a = load_dataset("facebook")
        b = load_dataset("facebook")
        assert a is b  # cached
        assert a == dataset_info("facebook").builder()  # deterministic

    def test_yelp_is_star_dominated(self):
        """The AGS showcase regime: overwhelmingly degree-1 vertices."""
        g = load_dataset("yelp")
        degrees = g.degrees()
        assert (degrees == 1).sum() > 0.95 * g.num_vertices

    def test_berkstan_has_extreme_hub(self):
        """The neighbor-buffering regime: one hub dwarfing the rest."""
        g = load_dataset("berkstan")
        degrees = np.sort(g.degrees())
        assert degrees[-1] > 4 * degrees[-2]

    def test_amazon_is_flat(self):
        g = load_dataset("amazon")
        assert g.max_degree <= 6

    def test_lollipop_shape(self):
        g = load_dataset("lollipop")
        degrees = g.degrees()
        assert degrees.min() == 1  # tail end
        assert degrees.max() >= 59  # clique + tail attachment
