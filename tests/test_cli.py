"""Tests for the motivo-py command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.io import load_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_defaults(self):
        args = build_parser().parse_args(["count", "facebook"])
        assert args.k == 5
        assert args.samples == 20000
        assert not args.ags

    def test_generate_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "nope", "out.txt"])


class TestGenerate:
    def test_writes_edge_list(self, tmp_path, capsys):
        out = tmp_path / "lollipop.txt"
        assert main(["generate", "lollipop", str(out)]) == 0
        graph = load_edge_list(out)
        assert graph.num_edges > 0
        # Notice lines log to stderr; results stay on stdout.
        assert "wrote lollipop" in capsys.readouterr().err

    def test_writes_binary(self, tmp_path):
        out = tmp_path / "lollipop.npz"
        assert main(["generate", "lollipop", str(out)]) == 0
        from repro.graph.io import load_binary

        assert load_binary(out).num_edges > 0


class TestInfo:
    def test_dataset_by_name(self, capsys):
        assert main(["info", "lollipop"]) == 0
        out = capsys.readouterr().out
        assert "n = " in out
        assert "max degree" in out

    def test_file_path(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        assert main(["info", str(path)]) == 0
        assert "m = 2" in capsys.readouterr().out


class TestExact:
    def test_exact_counts_printed(self, tmp_path, capsys):
        path = tmp_path / "c6.txt"
        path.write_text("\n".join(f"{i} {(i + 1) % 6}" for i in range(6)))
        assert main(["exact", str(path), "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "distinct 3-graphlets" in out


class TestCount:
    def test_end_to_end_naive(self, capsys):
        assert main([
            "count", "lollipop", "--k", "4",
            "--samples", "400", "--seed", "1",
        ]) == 0
        captured = capsys.readouterr()
        # Progress lines log to stderr, the estimate table to stdout.
        assert "build-up" in captured.err
        assert "naive sampling" in captured.err
        assert "graphlet" in captured.out

    def test_end_to_end_ags(self, capsys):
        assert main([
            "count", "lollipop", "--k", "4", "--ags",
            "--samples", "400", "--cover-threshold", "50", "--seed", "2",
        ]) == 0
        assert "AGS" in capsys.readouterr().err

    def test_biased_and_no_zero_rooting(self, capsys):
        assert main([
            "count", "friendster", "--k", "4",
            "--samples", "200", "--seed", "3",
            "--biased-lambda", "0.1", "--no-zero-rooting",
        ]) == 0

    def test_spill_dir(self, tmp_path, capsys):
        spill = tmp_path / "spill"
        assert main([
            "count", "lollipop", "--k", "4",
            "--samples", "100", "--seed", "4",
            "--spill-dir", str(spill),
        ]) == 0
        assert (spill / "layer_4.counts.npy").exists()


class TestSuggestLambda:
    def test_prints_lambda(self, capsys):
        assert main(["suggest-lambda", "friendster", "--k", "4",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "suggested lambda:" in out

    def test_sparse_graph_falls_back_to_uniform(self, tmp_path, capsys):
        path = tmp_path / "tiny.txt"
        path.write_text("0 1\n1 2\n")
        assert main(["suggest-lambda", str(path), "--k", "3",
                     "--seed", "6"]) == 0
        assert "uniform" in capsys.readouterr().out


class TestProfile:
    def test_prints_frequencies(self, capsys):
        assert main(["profile", "lollipop", "--k", "4",
                     "--samples", "300", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "motif profile" in out
        assert "e-" in out or "e+" in out  # scientific notation rows


class TestNonInducedFlag:
    def test_count_with_noninduced(self, capsys):
        assert main([
            "count", "lollipop", "--k", "4",
            "--samples", "300", "--seed", "8", "--noninduced",
        ]) == 0
        out = capsys.readouterr().out
        assert "non-induced" in out


class TestErrors:
    def test_missing_file_reported(self, capsys):
        with pytest.raises(FileNotFoundError):
            main(["info", "/nonexistent/graph.txt"])

    def test_library_errors_become_exit_one(self, tmp_path, capsys):
        path = tmp_path / "tiny.txt"
        path.write_text("0 1\n")
        status = main(["count", str(path), "--k", "1", "--samples", "10"])
        assert status == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_urn_count_degrades_to_zero(self, tmp_path, capsys):
        # A 2-vertex graph cannot host 4-graphlets: the urn is empty,
        # which is a zero-occurrences answer, not an error.
        path = tmp_path / "tiny.txt"
        path.write_text("0 1\n")
        out = tmp_path / "estimates.json"
        status = main([
            "count", str(path), "--k", "4", "--samples", "10",
            "--seed", "3", "--output", str(out),
        ])
        assert status == 0
        assert "empty urn" in capsys.readouterr().err
        from repro.sampling.estimates import GraphletEstimates

        restored = GraphletEstimates.from_json(out.read_text())
        assert restored.empty_urn
        assert restored.counts == {}


class TestJsonOutput:
    def test_count_writes_json(self, tmp_path, capsys):
        out = tmp_path / "estimates.json"
        assert main([
            "count", "lollipop", "--k", "4",
            "--samples", "200", "--seed", "9",
            "--output", str(out),
        ]) == 0
        from repro.sampling.estimates import GraphletEstimates

        restored = GraphletEstimates.from_json(out.read_text())
        assert restored.k == 4
        assert restored.samples == 200
        assert restored.total > 0


class TestTelemetryFlags:
    def test_count_writes_stats_and_trace(self, tmp_path, capsys):
        stats = tmp_path / "stats.json"
        trace = tmp_path / "trace.jsonl"
        assert main([
            "count", "lollipop", "--k", "4",
            "--samples", "200", "--seed", "21",
            "--stats-out", str(stats), "--trace-out", str(trace),
        ]) == 0
        import json

        snapshot = json.loads(stats.read_text())
        assert any(key.startswith("count.") for key in snapshot)
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().splitlines()
        }
        assert "buildup" in names

    def test_stats_pretty_prints_snapshot(self, tmp_path, capsys):
        stats = tmp_path / "stats.json"
        assert main([
            "count", "lollipop", "--k", "4",
            "--samples", "200", "--seed", "22",
            "--stats-out", str(stats),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(stats)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "timers (total seconds):" in out

    def test_stats_pretty_prints_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "count", "lollipop", "--k", "4",
            "--samples", "200", "--seed", "23",
            "--trace-out", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "spans in" in out
        assert "buildup" in out

    def test_stats_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("not json at all\n")
        assert main(["stats", str(bad)]) == 1
        assert "neither" in capsys.readouterr().err

    def test_log_level_silences_notices(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        assert main([
            "--log-level", "warning", "generate", "lollipop", str(out),
        ]) == 0
        assert "wrote lollipop" not in capsys.readouterr().err

    def test_log_json_emits_json_lines(self, tmp_path, capsys):
        import json

        out = tmp_path / "g.txt"
        assert main([
            "--log-json", "generate", "lollipop", str(out),
        ]) == 0
        err_lines = [
            line for line in capsys.readouterr().err.splitlines() if line
        ]
        records = [json.loads(line) for line in err_lines]
        assert any("wrote lollipop" in r["message"] for r in records)
        assert all(r["level"] == "info" for r in records)
